"""Integration tests on dynamic graphs: edge insertion, removal and churn."""

import pytest

from repro.analysis import skew, stabilization
from repro.core.algorithm import aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.neighbor_sets import FULLY_INSERTED
from repro.core.parameters import Parameters
from repro.network import dynamics, topology
from repro.network.edge import EdgeParams
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

PARAMS = Parameters(rho=0.01, mu=0.1)
EDGE = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)

# A small constant factor keeps the integration tests fast while preserving
# the Theta(G/mu) scaling of the insertion process (see EXPERIMENTS.md).
FAST_INSERTION = insertion_mod.scaled_insertion_duration(0.02)


def run_scenario(graph, duration, *, global_skew_bound=None, drift=None):
    config = SimulationConfig(
        params=PARAMS,
        dt=0.05,
        duration=duration,
        drift=drift,
        estimate_strategy="toward_observer",
    )
    aopt_config = default_aopt_config(
        graph, config, global_skew_bound=global_skew_bound, insertion_duration=FAST_INSERTION
    )
    return aopt_config, run_simulation(graph, aopt_factory(aopt_config), config)


class TestEdgeInsertion:
    @pytest.fixture(scope="class")
    def insertion_run(self):
        scenario = dynamics.line_with_end_to_end_insertion(6, insertion_time=20.0, params=EDGE)
        fast, slow = half_split(scenario.graph.nodes)
        drift = TwoGroupAdversary(PARAMS.rho, fast, slow)
        aopt_config, result = run_scenario(
            scenario.graph, duration=600.0, global_skew_bound=30.0, drift=drift
        )
        return scenario, aopt_config, result

    def test_new_edge_eventually_fully_inserted_on_both_sides(self, insertion_run):
        scenario, _, result = insertion_run
        u, v = scenario.new_edge
        assert result.engine.algorithm(u).neighbor_level(v) == FULLY_INSERTED
        assert result.engine.algorithm(v).neighbor_level(u) == FULLY_INSERTED

    def test_both_endpoints_used_identical_insertion_times(self, insertion_run):
        scenario, _, result = insertion_run
        u, v = scenario.new_edge
        # After full insertion the schedules are discarded; re-run the check on
        # the fact that both sides reached the same (fully inserted) state and
        # that neither side violated the subset chain along the way.
        assert result.engine.algorithm(u).levels.subset_chain_holds()
        assert result.engine.algorithm(v).levels.subset_chain_holds()

    def test_skew_on_new_edge_stabilizes_below_gradient_bound(self, insertion_run):
        scenario, aopt_config, result = insertion_run
        u, v = scenario.new_edge
        kappa = PARAMS.kappa_for(EDGE.epsilon, EDGE.tau)
        bound = PARAMS.local_skew_bound(kappa, aopt_config.global_skew.value(0.0))
        measurement = stabilization.stabilization_time(
            result.trace, u, v, bound=bound, event_time=scenario.insertion_time
        )
        assert measurement.stabilized

    def test_old_edges_keep_gradient_bound_throughout(self, insertion_run):
        scenario, aopt_config, result = insertion_run
        kappa = PARAMS.kappa_for(EDGE.epsilon, EDGE.tau)
        bound = PARAMS.local_skew_bound(kappa, aopt_config.global_skew.value(0.0))
        base_edges = [(i, i + 1) for i in range(5)]
        assert skew.max_local_skew(result.trace, base_edges) <= bound

    def test_global_skew_stays_bounded(self, insertion_run):
        _, aopt_config, result = insertion_run
        assert result.trace.max_global_skew() <= aopt_config.global_skew.value(0.0)


class TestEdgeRemoval:
    def test_removing_edge_clears_neighbor_state(self):
        graph = topology.line(4, EDGE)
        graph.schedule_edge_down(10.0, 1, 2)
        aopt_config, result = run_scenario(graph, duration=30.0)
        assert result.engine.algorithm(1).neighbor_level(2) is None
        assert result.engine.algorithm(2).neighbor_level(1) is None

    def test_clocks_keep_running_after_partition(self):
        graph = topology.line(4, EDGE)
        graph.schedule_edge_down(10.0, 1, 2)
        _, result = run_scenario(graph, duration=30.0)
        for node in result.engine.nodes:
            assert result.engine.logical_value(node) >= PARAMS.alpha * 30.0 - 1e-6


class TestChurn:
    def test_aopt_survives_random_churn(self):
        base = topology.line(6, EDGE)
        graph = dynamics.periodic_churn(
            base,
            [(0, 2), (1, 4), (3, 5)],
            period=10.0,
            horizon=80.0,
            params=EDGE,
            seed=3,
        )
        fast, slow = half_split(graph.nodes)
        aopt_config, result = run_scenario(
            graph,
            duration=100.0,
            drift=TwoGroupAdversary(PARAMS.rho, fast, slow),
        )
        assert result.trace.max_global_skew() <= aopt_config.global_skew.value(0.0)
        # Backbone neighbor sets respect the subset chain at all times.
        for node in result.engine.nodes:
            assert result.engine.algorithm(node).levels.subset_chain_holds()

    def test_sliding_window_line(self):
        graph = dynamics.sliding_window_line(
            6, window=2, shift_period=15.0, horizon=60.0, params=EDGE
        )
        aopt_config, result = run_scenario(graph, duration=80.0)
        assert result.trace.max_global_skew() <= aopt_config.global_skew.value(0.0)
