"""Tests for repro.core.clocks."""

import pytest

from repro.core.clocks import (
    ClockError,
    HardwareClock,
    LogicalClock,
    rate_envelope_holds,
)


class TestHardwareClock:
    def test_starts_at_initial_value(self):
        assert HardwareClock(0.01).value == 0.0
        assert HardwareClock(0.01, 5.0).value == 5.0

    def test_rejects_negative_initial_value(self):
        with pytest.raises(ClockError):
            HardwareClock(0.01, -1.0)

    def test_rejects_bad_rho(self):
        with pytest.raises(ClockError):
            HardwareClock(1.0)
        with pytest.raises(ClockError):
            HardwareClock(-0.1)

    def test_advance_accumulates(self):
        clock = HardwareClock(0.01)
        clock.advance(1.0, 1.0)
        clock.advance(2.0, 1.005)
        assert clock.value == pytest.approx(1.0 + 2.01)
        assert clock.time == pytest.approx(3.0)

    def test_rate_outside_envelope_rejected(self):
        clock = HardwareClock(0.01)
        with pytest.raises(ClockError):
            clock.advance(1.0, 1.02)
        with pytest.raises(ClockError):
            clock.advance(1.0, 0.98)

    def test_rate_at_envelope_boundary_accepted(self):
        clock = HardwareClock(0.01)
        clock.advance(1.0, 1.01)
        clock.advance(1.0, 0.99)
        assert clock.value == pytest.approx(2.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ClockError):
            HardwareClock(0.01).advance(-1.0, 1.0)

    def test_last_rate_recorded(self):
        clock = HardwareClock(0.05)
        clock.advance(1.0, 1.03)
        assert clock.last_rate == pytest.approx(1.03)

    def test_history_interpolation(self):
        clock = HardwareClock(0.01, record_history=True)
        clock.advance(1.0, 1.0)
        clock.advance(1.0, 1.01)
        assert clock.value_at(0.5) == pytest.approx(0.5)
        assert clock.value_at(1.5) == pytest.approx(1.0 + 0.505)
        assert clock.value_at(-1.0) == pytest.approx(0.0)
        assert clock.value_at(10.0) == pytest.approx(clock.value)

    def test_history_disabled_raises(self):
        clock = HardwareClock(0.01)
        with pytest.raises(ClockError):
            clock.value_at(0.0)


class TestLogicalClock:
    def test_advance_with_multiplier(self):
        clock = LogicalClock()
        clock.advance(1.0, 1.0, 1.1)
        assert clock.value == pytest.approx(1.1)
        assert clock.last_multiplier == pytest.approx(1.1)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ClockError):
            LogicalClock().advance(1.0, 1.0, -0.5)

    def test_jump_requires_permission(self):
        clock = LogicalClock()
        with pytest.raises(ClockError):
            clock.jump_to(1.0)

    def test_jump_forward_allowed(self):
        clock = LogicalClock(allow_jumps=True)
        clock.advance(1.0, 1.0, 1.0)
        clock.jump_to(5.0)
        assert clock.value == pytest.approx(5.0)

    def test_jump_backwards_rejected(self):
        clock = LogicalClock(allow_jumps=True)
        clock.advance(1.0, 1.0, 1.0)
        with pytest.raises(ClockError):
            clock.jump_to(0.5)

    def test_monotone_over_many_steps(self):
        clock = LogicalClock()
        previous = 0.0
        for step in range(100):
            clock.advance(0.1, 1.0, 1.0 if step % 2 == 0 else 1.1)
            assert clock.value >= previous
            previous = clock.value

    def test_history_records_jumps(self):
        clock = LogicalClock(record_history=True, allow_jumps=True)
        clock.advance(1.0, 1.0, 1.0)
        clock.jump_to(3.0)
        assert clock.history[-1] == (1.0, 3.0)


class TestRateEnvelope:
    def test_within_envelope(self):
        assert rate_envelope_holds(10.0, 10.0, 0.99, 1.11)

    def test_below_envelope(self):
        assert not rate_envelope_holds(10.0, 9.0, 0.99, 1.11)

    def test_above_envelope(self):
        assert not rate_envelope_holds(10.0, 12.0, 0.99, 1.11)

    def test_zero_elapsed(self):
        assert rate_envelope_holds(0.0, 0.0, 0.99, 1.11)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ClockError):
            rate_envelope_holds(-1.0, 0.0, 0.99, 1.11)
