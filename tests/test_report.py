"""Tests for repro.analysis.report."""

import pytest

from repro.analysis.report import Table, format_cell, format_series, ratio_summary


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159, 2) == "3.14"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_and_int(self):
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"


class TestTable:
    def test_add_row_and_render(self):
        table = Table("Demo", ["n", "skew"])
        table.add_row(4, 1.23456)
        table.add_row(8, 2.0)
        text = table.render()
        assert "Demo" in text
        assert "1.235" in text
        assert text.count("\n") >= 4

    def test_row_length_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_access(self):
        table = Table("Demo", ["n", "skew"])
        table.add_row(4, 1.0)
        table.add_row(8, 2.0)
        assert table.column("skew") == [1.0, 2.0]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_alignment_width(self):
        table = Table("T", ["name", "v"])
        table.add_row("a-very-long-name", 1)
        lines = table.render().splitlines()
        header, data = lines[2], lines[4]
        assert len(header) == len(data)


class TestHelpers:
    def test_format_series(self):
        text = format_series("S", [(1, 2.0), (2, 3.0)], ["x", "y"])
        assert "S" in text and "2.000" in text

    def test_ratio_summary(self):
        assert ratio_summary([2.0, 4.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_ratio_summary_ignores_zero_references(self):
        assert ratio_summary([2.0, 4.0], [0.0, 2.0]) == pytest.approx(2.0)

    def test_ratio_summary_empty(self):
        assert ratio_summary([], []) is None
