"""Tests for repro.core.neighbor_sets."""

import pytest

from repro.core.neighbor_sets import FULLY_INSERTED, NeighborLevelError, NeighborLevels


class TestNeighborLevels:
    def test_requires_positive_max_level(self):
        with pytest.raises(NeighborLevelError):
            NeighborLevels(0)

    def test_discover_adds_to_level_zero_only(self):
        levels = NeighborLevels(4)
        levels.discover(7)
        assert 7 in levels
        assert levels.level_of(7) == 0
        assert levels.members(0) == {7}
        assert levels.members(1) == set()

    def test_discover_does_not_demote(self):
        levels = NeighborLevels(4)
        levels.add_fully_inserted(7)
        levels.discover(7)
        assert levels.level_of(7) == FULLY_INSERTED

    def test_fully_inserted_in_all_levels(self):
        levels = NeighborLevels(4)
        levels.add_fully_inserted(3)
        for s in range(5):
            assert 3 in levels.members(s)
        assert levels.is_fully_inserted(3)
        assert levels.fully_inserted() == {3}

    def test_promotion_is_monotone(self):
        levels = NeighborLevels(4)
        levels.discover(1)
        levels.promote(1, 2)
        assert levels.level_of(1) == 2
        levels.promote(1, 1)
        assert levels.level_of(1) == 2

    def test_promotion_to_max_level_means_fully_inserted(self):
        levels = NeighborLevels(3)
        levels.discover(1)
        levels.promote(1, 3)
        assert levels.is_fully_inserted(1)

    def test_promotion_requires_discovery(self):
        levels = NeighborLevels(4)
        with pytest.raises(NeighborLevelError):
            levels.promote(9, 1)

    def test_promotion_rejects_negative_level(self):
        levels = NeighborLevels(4)
        levels.discover(1)
        with pytest.raises(NeighborLevelError):
            levels.promote(1, -1)

    def test_remove_drops_from_all_levels(self):
        levels = NeighborLevels(4)
        levels.add_fully_inserted(2)
        levels.remove(2)
        assert 2 not in levels
        assert levels.members(0) == set()

    def test_remove_unknown_is_noop(self):
        levels = NeighborLevels(4)
        levels.remove(99)
        assert len(levels) == 0

    def test_clear(self):
        levels = NeighborLevels(4)
        levels.discover(1)
        levels.discover(2)
        levels.clear()
        assert len(levels) == 0

    def test_members_negative_level_rejected(self):
        with pytest.raises(NeighborLevelError):
            NeighborLevels(4).members(-1)

    def test_contains_at_level(self):
        levels = NeighborLevels(4)
        levels.discover(1)
        levels.promote(1, 2)
        assert levels.contains(1, 2)
        assert not levels.contains(1, 3)
        assert not levels.contains(5, 0)

    def test_discovered_set(self):
        levels = NeighborLevels(4)
        levels.discover(1)
        levels.add_fully_inserted(2)
        assert levels.discovered() == {1, 2}

    def test_subset_chain_lemma_5_1(self):
        """Lemma 5.1: the level sets form a descending chain."""
        levels = NeighborLevels(5)
        levels.add_fully_inserted(0)
        levels.discover(1)
        levels.promote(1, 2)
        levels.discover(2)
        levels.promote(2, 4)
        levels.discover(3)
        assert levels.subset_chain_holds()
        previous = levels.members(0)
        for s in range(1, 6):
            current = levels.members(s)
            assert current.issubset(previous)
            previous = current
