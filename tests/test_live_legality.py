"""Tests for repro.analysis.live_legality."""

import pytest

from repro.analysis import live_legality
from repro.baselines.max_algorithm import max_propagation_factory
from repro.core.algorithm import aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.parameters import Parameters
from repro.network import dynamics, topology
from repro.network.edge import EdgeParams
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, build_engine, default_aopt_config

PARAMS = Parameters(rho=0.01, mu=0.1)
EDGE = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)


def make_engine(graph, *, duration=0.0, global_skew_bound=40.0):
    fast, slow = half_split(graph.nodes)
    config = SimulationConfig(
        params=PARAMS,
        dt=0.05,
        duration=duration,
        drift=TwoGroupAdversary(PARAMS.rho, fast, slow),
        estimate_strategy="toward_observer",
    )
    aopt_config = default_aopt_config(
        graph,
        config,
        global_skew_bound=global_skew_bound,
        insertion_duration=insertion_mod.scaled_insertion_duration(0.02),
    )
    engine = build_engine(graph, aopt_factory(aopt_config), config)
    if duration > 0:
        engine.run(duration)
    return engine, aopt_config


class TestLevelEdgeSets:
    def test_initial_edges_present_on_every_level(self):
        engine, config = make_engine(topology.line(4, EDGE))
        sets = live_legality.level_edge_sets(engine, config.max_level, PARAMS)
        for level in range(1, config.max_level + 1):
            assert len(sets[level]) == 3

    def test_weights_are_kappa(self):
        engine, config = make_engine(topology.line(3, EDGE))
        sets = live_legality.level_edge_sets(engine, 1, PARAMS)
        kappa = PARAMS.kappa_for(EDGE.epsilon, EDGE.tau)
        assert all(weight == pytest.approx(kappa) for _, _, weight in sets[1])

    def test_new_edge_absent_until_inserted(self):
        scenario = dynamics.line_with_end_to_end_insertion(5, insertion_time=5.0, params=EDGE)
        engine, config = make_engine(scenario.graph, duration=10.0, global_skew_bound=25.0)
        sets = live_legality.level_edge_sets(engine, config.max_level, PARAMS)
        new_edge_pairs = {(u, v) for u, v, _ in sets[1]}
        assert (0, 4) not in new_edge_pairs
        # After running long enough for the (scaled) insertion to finish the
        # edge appears on every level.
        engine.run(600.0)
        sets = live_legality.level_edge_sets(engine, config.max_level, PARAMS)
        assert (0, 4) in {(u, v) for u, v, _ in sets[config.max_level]}

    def test_non_aopt_algorithms_rejected(self):
        config = SimulationConfig(params=PARAMS, dt=0.05, duration=0.0)
        engine = build_engine(topology.line(3, EDGE), max_propagation_factory(PARAMS.rho), config)
        with pytest.raises(live_legality.LiveLegalityError):
            live_legality.level_edge_sets(engine, 2, PARAMS)


class TestCheckEngine:
    def test_synchronized_start_is_legal(self):
        engine, config = make_engine(topology.line(5, EDGE))
        report = live_legality.check_engine(engine, 40.0, PARAMS)
        assert report.is_legal
        assert report.worst_excess == 0.0
        assert report.levels_checked >= 1
        assert report.time == 0.0

    def test_stays_legal_during_adversarial_run(self):
        engine, config = make_engine(topology.line(6, EDGE), duration=80.0)
        report = live_legality.check_engine(
            engine, config.global_skew.value(0.0), PARAMS, max_level=config.max_level
        )
        assert report.is_legal

    def test_detects_artificial_violation(self):
        engine, config = make_engine(topology.line(4, EDGE))
        # Force a huge skew by hand: node 3 jumps far ahead of its neighbors.
        engine._nodes[3].logical.jump_to(500.0)
        report = live_legality.check_engine(engine, 40.0, PARAMS)
        assert not report.is_legal
        assert report.worst_excess > 0.0

    def test_default_max_level_derived(self):
        engine, _ = make_engine(topology.line(4, EDGE))
        report = live_legality.check_engine(engine, 40.0, PARAMS)
        expected = PARAMS.levels_for(40.0, PARAMS.kappa_for(EDGE.epsilon, EDGE.tau))
        assert report.levels_checked == expected
