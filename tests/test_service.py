"""Tests for repro.service core: jobs, coalescing, concurrency, janitor.

The HTTP layer has its own suite (test_service_http.py); everything here
talks to :class:`SweepService` directly so failures point at the queue /
single-flight machinery rather than at sockets.
"""

import json
import threading
import time

import pytest

import repro.experiments.executor as executor_mod
from repro.experiments import ResultCache, scenario
from repro.service import JsonlLog, ServiceConfig, SweepService
from repro.service.core import ServiceError

TINY_SIM = {"duration": 4.0, "dt": 0.1}


def tiny_spec(n=4, **overrides):
    return scenario("quickstart_line", n=n, sim=dict(TINY_SIM), **overrides)


@pytest.fixture
def service(tmp_path):
    svc = SweepService(tmp_path / "cache", config=ServiceConfig(workers=4))
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def execution_counter(monkeypatch):
    """Count actual simulations (cache hits and coalesced waits don't)."""
    calls = []
    real = executor_mod.execute_spec

    def counting(spec, *args, **kwargs):
        calls.append(spec.content_hash())
        return real(spec, *args, **kwargs)

    monkeypatch.setattr(executor_mod, "execute_spec", counting)
    return calls


def wait_done(job, timeout=60):
    assert job.wait(timeout), f"job {job.id} did not finish (state={job.state})"
    return job


class TestSubmission:
    def test_submit_executes_and_completes(self, service, execution_counter):
        job = wait_done(service.submit([tiny_spec()]))
        assert job.state == "done"
        assert job.progress[0]["state"] == "done"
        assert not job.progress[0]["from_cache"]
        assert len(execution_counter) == 1
        assert job.stats["executed"] == 1

    def test_completed_spec_is_served_from_cache_without_enqueuing(
        self, service, execution_counter
    ):
        spec = tiny_spec()
        wait_done(service.submit([spec]))
        job = service.submit([spec])
        # Fully cached submissions are finished before submit() returns --
        # they never touch the queue or the worker pool.
        assert job.state == "done"
        assert job.progress[0]["state"] == "cached"
        assert job.progress[0]["from_cache"]
        assert len(execution_counter) == 1
        assert service.counters["specs_cached_at_submit"] == 1

    def test_result_key_matches_cache_file(self, service):
        spec = tiny_spec()
        job = wait_done(service.submit([spec]))
        key = job.progress[0]["result_key"]
        assert key == service.cache.key_for(spec)
        path = service.cache.path_for_key(key)
        assert path.is_file()
        assert json.loads(path.read_text())["spec_hash"] == spec.content_hash()

    def test_empty_submission_rejected(self, service):
        with pytest.raises(ServiceError):
            service.submit([])

    def test_per_job_spec_cap(self, tmp_path):
        svc = SweepService(
            tmp_path / "cache", config=ServiceConfig(max_specs_per_job=2)
        )
        with pytest.raises(ServiceError):
            svc.submit([tiny_spec(n=n) for n in (4, 5, 6)])

    def test_duplicate_specs_in_one_submission_execute_once(
        self, service, execution_counter
    ):
        spec = tiny_spec()
        job = wait_done(service.submit([spec, spec, spec]))
        assert job.state == "done"
        assert len(execution_counter) == 1
        states = [entry["state"] for entry in job.progress]
        assert states.count("done") == 3
        assert sum(1 for e in job.progress if e.get("coalesced")) == 2


class TestCoalescing:
    def test_eight_concurrent_identical_submissions_execute_once(
        self, service, execution_counter
    ):
        spec = tiny_spec()
        jobs = []
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            jobs.append(service.submit([spec]))

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for job in jobs:
            wait_done(job)
        assert all(job.state == "done" for job in jobs)
        # The acceptance criterion: one simulation total, everyone served.
        assert len(execution_counter) == 1
        assert service.counters["specs_executed"] == 1
        # A submit thread scheduled after the owner finished counts as a
        # cache hit instead of a coalesce; either way nothing re-executed.
        assert (
            service.counters["specs_coalesced"]
            + service.counters["specs_cached_at_submit"]
            == 7
        )

    def test_concurrent_distinct_submissions_all_complete(
        self, service, execution_counter
    ):
        specs = [tiny_spec(n=n) for n in range(4, 12)]
        jobs = []

        def submit(spec):
            jobs.append(service.submit([spec]))

        threads = [threading.Thread(target=submit, args=(spec,)) for spec in specs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for job in jobs:
            wait_done(job)
        assert all(job.state == "done" for job in jobs)
        assert len(execution_counter) == len(specs)
        hashes = {job.progress[0]["spec_hash"] for job in jobs}
        assert len(hashes) == len(specs)

    def test_single_worker_concurrent_identical_submissions_complete(
        self, tmp_path, execution_counter
    ):
        # Regression: leases were created under the service lock but the
        # queue put happened after releasing it, so a follower job could be
        # enqueued ahead of its owner.  With workers=1 that parks the only
        # worker in _await_followed on an event whose owner is still behind
        # it in the FIFO -- a permanent deadlock.
        svc = SweepService(tmp_path / "cache", config=ServiceConfig(workers=1))
        svc.start()
        try:
            spec = tiny_spec()
            jobs = []
            barrier = threading.Barrier(8)

            def submit():
                barrier.wait()
                jobs.append(svc.submit([spec]))

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for job in jobs:
                wait_done(job)
            assert all(job.state == "done" for job in jobs)
            assert len(execution_counter) == 1
            assert svc.counters["specs_executed"] == 1
        finally:
            svc.stop()

    def test_enqueue_is_ordered_with_lease_creation(self, tmp_path):
        # White-box guard for the same regression: the queue put must
        # happen inside the critical section that created the job's
        # leases, so FIFO order always matches lease-creation order.
        svc = SweepService(tmp_path / "cache", config=ServiceConfig(workers=1))
        locked_at_put = []
        real_put = svc._queue.put

        def recording_put(item):
            locked_at_put.append(svc._lock.locked())
            real_put(item)

        svc._queue.put = recording_put
        svc.submit([tiny_spec()])  # service not started: nothing drains
        assert locked_at_put == [True]

    def test_coalesced_follower_reads_owner_result(self, service):
        spec = tiny_spec()
        jobs = [service.submit([spec]) for _ in range(3)]
        for job in jobs:
            wait_done(job)
        keys = {job.progress[0]["result_key"] for job in jobs}
        assert len(keys) == 1
        payload = json.loads(service.cache.path_for_key(keys.pop()).read_text())
        assert payload["spec_hash"] == spec.content_hash()


class TestFailurePaths:
    def test_failing_spec_fails_job_and_releases_lease(self, service, monkeypatch):
        def boom(spec, *args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(executor_mod, "execute_spec", boom)
        spec = tiny_spec()
        job = wait_done(service.submit([spec]))
        assert job.state == "failed"
        assert "engine exploded" in job.error
        assert job.progress[0]["state"] == "failed"
        # The lease must be released so the key is re-executable.
        assert service._inflight == {}
        monkeypatch.undo()
        retry = wait_done(service.submit([spec]))
        assert retry.state == "done"

    def test_follower_of_failed_owner_fails_too(self, tmp_path, monkeypatch):
        # One worker: the follower job queues behind the owner job.
        svc = SweepService(tmp_path / "cache", config=ServiceConfig(workers=1))

        def boom(spec, *args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(executor_mod, "execute_spec", boom)
        svc.start()
        try:
            spec = tiny_spec()
            owner = svc.submit([spec])
            follower = svc.submit([spec])
            wait_done(owner)
            wait_done(follower)
            assert owner.state == "failed"
            assert follower.state == "failed"
            assert "engine exploded" in follower.progress[0]["error"]
        finally:
            svc.stop()


class TestJobStore:
    def test_unknown_job_is_none(self, service):
        assert service.jobs.get("nope") is None

    def test_finished_job_retention_is_bounded(self, tmp_path):
        svc = SweepService(
            tmp_path / "cache",
            config=ServiceConfig(workers=1, max_finished_jobs=2),
        )
        svc.start()
        try:
            spec = tiny_spec()
            wait_done(svc.submit([spec]))
            jobs = [svc.submit([spec]) for _ in range(4)]  # all cached, done
            assert svc.jobs.get(jobs[-1].id) is not None
            counts = svc.jobs.counts()
            assert counts["total"] <= 3  # 2 retained finished + newest
        finally:
            svc.stop()

    def test_describe_reports_version_and_cache_format(self, service):
        from repro import __version__
        from repro.experiments.executor import CACHE_FORMAT_VERSION

        payload = service.describe()
        assert payload["version"] == __version__
        assert payload["cache_format_version"] == CACHE_FORMAT_VERSION
        assert payload["jobs"]["total"] == 0
        assert "by_backend" in payload["cache"]


class TestTelemetry:
    def test_jsonl_log_records_job_lifecycle(self, tmp_path):
        log_path = tmp_path / "svc.log.jsonl"
        svc = SweepService(
            tmp_path / "cache",
            config=ServiceConfig(workers=1),
            log=JsonlLog(log_path),
        )
        svc.start()
        try:
            wait_done(svc.submit([tiny_spec()]))
        finally:
            svc.stop()
        lines = [json.loads(line) for line in log_path.read_text().splitlines()]
        events = [line["event"] for line in lines]
        assert "service_start" in events
        assert "job_submitted" in events
        assert "spec_progress" in events
        assert "job_done" in events
        assert "service_stop" in events
        done = [l for l in lines if l["event"] == "job_done"][-1]
        assert done["state"] == "done"

    def test_disabled_log_is_a_noop(self):
        log = JsonlLog(None)
        assert not log.enabled
        log.write("anything", detail=1)  # must not raise


class TestJanitor:
    def test_run_janitor_once_applies_prune_policy(self, tmp_path):
        svc = SweepService(
            tmp_path / "cache",
            config=ServiceConfig(workers=1, max_cache_bytes=0),
        )
        svc.start()
        try:
            wait_done(svc.submit([tiny_spec()]))
            assert svc.cache.stats()["entries"] == 1
            removed, freed = svc.run_janitor_once()
            assert removed == 1
            assert freed > 0
            assert svc.cache.stats()["entries"] == 0
        finally:
            svc.stop()

    def test_janitor_thread_runs_periodically(self, tmp_path):
        svc = SweepService(
            tmp_path / "cache",
            config=ServiceConfig(
                workers=1, max_cache_bytes=0, janitor_interval=0.05
            ),
        )
        svc.start()
        try:
            wait_done(svc.submit([tiny_spec()]))
            deadline = time.monotonic() + 10
            while svc.cache.stats()["entries"] and time.monotonic() < deadline:
                time.sleep(0.05)
            assert svc.cache.stats()["entries"] == 0
        finally:
            svc.stop()


class TestResultCacheLifecycle:
    def test_stats_breakdown_by_backend(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        from repro.experiments import run_sweep

        run_sweep([tiny_spec()], cache=cache)
        run_sweep([tiny_spec().with_backend("fast")], cache=cache)
        run_sweep([tiny_spec().with_trace("none")], cache=cache)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        # {hash}.notrace is still a reference entry; .fast is the backend.
        assert stats["by_backend"] == {"fast": 1, "reference": 2}

    def test_prune_older_than(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache")
        from repro.experiments import run_sweep

        run_sweep([tiny_spec()], cache=cache)
        (entry,) = cache.entries()
        old = time.time() - 1000
        os.utime(entry, (old, old))
        removed, freed = cache.prune(older_than=500)
        assert (removed, freed > 0) == (1, True)
        assert cache.entries() == []

    def test_prune_max_bytes_evicts_lru_by_mtime(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache")
        from repro.experiments import run_sweep

        run_sweep([tiny_spec(n=4), tiny_spec(n=5), tiny_spec(n=6)], cache=cache)
        entries = cache.entries()
        sizes = {entry: entry.stat().st_size for entry in entries}
        # Force a deterministic age order: entries[0] oldest.
        for offset, entry in enumerate(entries):
            stamp = time.time() - 100 + offset
            os.utime(entry, (stamp, stamp))
        keep = sizes[entries[-1]] + sizes[entries[-2]]
        removed, _ = cache.prune(max_bytes=keep)
        assert removed == 1
        survivors = cache.entries()
        assert entries[0] not in survivors
        assert set(survivors) == {entries[1], entries[2]}

    def test_backend_of_key(self):
        h = "a" * 64
        assert ResultCache.backend_of_key(h) == "reference"
        assert ResultCache.backend_of_key(f"{h}.fast") == "fast"
        assert ResultCache.backend_of_key(f"{h}.vec.s4.notrace") == "vec"
        assert ResultCache.backend_of_key(f"{h}.notrace") == "reference"
        assert ResultCache.backend_of_key(f"{h}.s4") == "reference"
        assert ResultCache.backend_of_key(f"{h}.obs-0a1b") == "reference"

    def test_path_for_key_rejects_escapes(self, tmp_path):
        from repro.experiments.executor import ExecutorError

        cache = ResultCache(tmp_path / "cache")
        good = cache.path_for_key("ab" * 32 + ".fast.json")
        assert good.name == "ab" * 32 + ".fast.json"
        for bad in ("../evil", "a/b", "..", "%2e%2e", "A" * 64, "ab" * 32 + ".bad!"):
            with pytest.raises(ExecutorError):
                cache.path_for_key(bad)
