"""Tests for repro.core.skew_estimates."""

import pytest

from repro.core.skew_estimates import (
    DynamicGlobalSkewEstimate,
    StaticGlobalSkewEstimate,
    suggest_global_skew_bound,
)
from repro.network import topology
from repro.network.edge import EdgeParams


class TestStaticEstimate:
    def test_constant_value(self):
        estimate = StaticGlobalSkewEstimate(42.0)
        assert estimate.value(0.0) == 42.0
        assert estimate.value(1e6) == 42.0
        assert not estimate.is_dynamic()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            StaticGlobalSkewEstimate(0.0)


class TestDynamicEstimate:
    def test_uses_provider(self):
        estimate = DynamicGlobalSkewEstimate(lambda t: 10.0 + t)
        assert estimate.value(5.0) == 15.0
        assert estimate.is_dynamic()

    def test_floor_applies(self):
        estimate = DynamicGlobalSkewEstimate(lambda t: 0.1, floor=2.0)
        assert estimate.value(0.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicGlobalSkewEstimate("not callable")
        with pytest.raises(ValueError):
            DynamicGlobalSkewEstimate(lambda t: 1.0, floor=0.0)


class TestSuggestGlobalSkewBound:
    def test_larger_graphs_get_larger_bounds(self, params):
        small = suggest_global_skew_bound(topology.line(4), params)
        large = suggest_global_skew_bound(topology.line(16), params)
        assert large > small

    def test_bound_scales_with_edge_uncertainty(self, params):
        loose = suggest_global_skew_bound(topology.line(6, EdgeParams(epsilon=4.0)), params)
        tight = suggest_global_skew_bound(topology.line(6, EdgeParams(epsilon=1.0)), params)
        assert loose > tight

    def test_safety_factor_validated(self, params):
        with pytest.raises(ValueError):
            suggest_global_skew_bound(topology.line(4), params, safety_factor=0.5)

    def test_bound_positive_for_single_pair(self, params):
        assert suggest_global_skew_bound(topology.line(2), params) > 0
