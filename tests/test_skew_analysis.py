"""Tests for repro.analysis.skew."""

import pytest

from repro.analysis import skew
from repro.network import paths, topology
from repro.sim.trace import Trace, TraceSample


def sample(t, values, max_estimates=None):
    nodes = list(values)
    return TraceSample(
        time=t,
        logical=dict(values),
        hardware=dict(values),
        multipliers={n: 1.0 for n in nodes},
        modes={n: "slow" for n in nodes},
        max_estimates=max_estimates or {n: max(values.values()) for n in nodes},
    )


@pytest.fixture
def simple_trace():
    trace = Trace(1.0)
    trace.record(sample(0.0, {0: 0.0, 1: 0.0, 2: 0.0}))
    trace.record(sample(1.0, {0: 1.0, 1: 2.0, 2: 4.0}))
    trace.record(sample(2.0, {0: 2.0, 1: 3.0, 2: 3.5}))
    return trace


class TestGlobalAndLocalSkew:
    def test_global_skew_of_sample(self, simple_trace):
        assert skew.global_skew(simple_trace.sample_at(1.0)) == pytest.approx(3.0)

    def test_max_global_skew(self, simple_trace):
        assert skew.max_global_skew(simple_trace) == pytest.approx(3.0)

    def test_max_global_skew_with_start(self, simple_trace):
        assert skew.max_global_skew(simple_trace, start=2.0) == pytest.approx(1.5)

    def test_local_skew(self, simple_trace):
        edges = [(0, 1), (1, 2)]
        assert skew.local_skew(simple_trace.sample_at(1.0), edges) == pytest.approx(2.0)

    def test_max_local_skew(self, simple_trace):
        edges = [(0, 1), (1, 2)]
        assert skew.max_local_skew(simple_trace, edges) == pytest.approx(2.0)

    def test_max_skew_between(self, simple_trace):
        assert skew.max_skew_between(simple_trace, 0, 2) == pytest.approx(3.0)
        assert skew.max_skew_between(simple_trace, 0, 2, start=2.0) == pytest.approx(1.5)

    def test_edges_of(self):
        graph = topology.line(4)
        assert set(skew.edges_of(graph)) == {(0, 1), (1, 2), (2, 3)}


class TestSkewByDistance:
    def test_per_distance_maximum(self, simple_trace):
        graph = topology.line(3)
        distances = paths.all_pairs_distances(graph, paths.hop_weight(graph))
        by_distance = skew.skew_by_distance(simple_trace.sample_at(1.0), distances)
        assert by_distance[1.0] == pytest.approx(2.0)
        assert by_distance[2.0] == pytest.approx(3.0)

    def test_max_over_trace(self, simple_trace):
        graph = topology.line(3)
        result = skew.max_skew_by_distance(
            simple_trace, graph, weight=paths.hop_weight(graph)
        )
        assert result[1.0] == pytest.approx(2.0)
        assert result[2.0] == pytest.approx(3.0)
        assert list(result) == sorted(result)


class TestRatesAndWindows:
    def test_skew_growth_rate_positive_when_growing(self):
        trace = Trace(1.0)
        for t in range(5):
            trace.record(sample(float(t), {0: 0.0, 1: 0.5 * t}))
        rate = skew.skew_growth_rate(trace, start=0.0, end=4.0)
        assert rate == pytest.approx(0.5)

    def test_skew_growth_rate_negative_when_shrinking(self):
        trace = Trace(1.0)
        for t in range(5):
            trace.record(sample(float(t), {0: 0.0, 1: 4.0 - t}))
        rate = skew.skew_growth_rate(trace, start=0.0, end=4.0)
        assert rate == pytest.approx(-1.0)

    def test_skew_growth_rate_insufficient_samples(self, simple_trace):
        assert skew.skew_growth_rate(simple_trace, start=10.0, end=20.0) is None

    def test_steady_state_window(self, simple_trace):
        start, end = skew.steady_state_window(simple_trace, fraction=0.5)
        assert end == pytest.approx(2.0)
        assert start == pytest.approx(1.0)

    def test_steady_state_window_validation(self, simple_trace):
        with pytest.raises(ValueError):
            skew.steady_state_window(simple_trace, fraction=0.0)
        with pytest.raises(ValueError):
            skew.steady_state_window(Trace(1.0))


class TestMaxEstimateChecks:
    def test_lag_and_violations(self):
        good = sample(0.0, {0: 5.0, 1: 10.0}, max_estimates={0: 9.0, 1: 10.0})
        assert skew.max_estimate_lag(good) == pytest.approx(1.0)
        assert skew.max_estimate_violations(good) == 0
        bad = sample(0.0, {0: 5.0, 1: 10.0}, max_estimates={0: 12.0, 1: 10.0})
        assert skew.max_estimate_violations(bad) == 1


class TestWindowAndRateEdgeCases:
    """Edge cases for steady_state_window / skew_growth_rate (PR 5).

    Previously only exercised indirectly through summarize(); pinned down
    here directly: empty traces, single samples, zero-length windows.
    """

    def test_steady_state_window_empty_trace_raises(self):
        with pytest.raises(ValueError, match="empty"):
            skew.steady_state_window(Trace(1.0), fraction=0.25)

    def test_steady_state_window_single_sample_degenerates(self):
        trace = Trace(1.0)
        trace.record(sample(3.0, {0: 1.0}))
        start, end = skew.steady_state_window(trace, fraction=0.25)
        assert (start, end) == (3.0, 3.0)

    def test_steady_state_window_full_fraction_covers_whole_run(self):
        trace = Trace(1.0)
        trace.record(sample(1.0, {0: 0.0}))
        trace.record(sample(5.0, {0: 0.0}))
        assert skew.steady_state_window(trace, fraction=1.0) == (1.0, 5.0)

    def test_steady_state_window_fraction_above_one_rejected(self):
        trace = Trace(1.0)
        trace.record(sample(0.0, {0: 0.0}))
        with pytest.raises(ValueError, match="fraction"):
            skew.steady_state_window(trace, fraction=1.5)

    def test_skew_growth_rate_empty_trace(self):
        assert skew.skew_growth_rate(Trace(1.0), start=0.0, end=10.0) is None

    def test_skew_growth_rate_single_sample(self):
        trace = Trace(1.0)
        trace.record(sample(1.0, {0: 0.0, 1: 1.0}))
        assert skew.skew_growth_rate(trace, start=0.0, end=2.0) is None

    def test_skew_growth_rate_zero_length_window(self):
        trace = Trace(1.0)
        for t in range(5):
            trace.record(sample(float(t), {0: 0.0, 1: float(t)}))
        # Window collapsed to one instant: only one sample falls inside.
        assert skew.skew_growth_rate(trace, start=2.0, end=2.0) is None

    def test_skew_growth_rate_coincident_times_has_no_slope(self):
        trace = Trace(1.0)  # duplicates allowed by default policy
        trace.record(sample(1.0, {0: 0.0, 1: 1.0}))
        trace.record(sample(1.0, {0: 0.0, 1: 3.0}))
        # Two samples, but zero time variance: the slope is undefined.
        assert skew.skew_growth_rate(trace, start=0.0, end=2.0) is None

    def test_steady_window_start_matches_streaming_helper(self):
        from repro.metrics import streaming

        trace = Trace(1.0)
        trace.record(sample(2.0, {0: 0.0}))
        trace.record(sample(10.0, {0: 0.0}))
        start, end = skew.steady_state_window(trace, fraction=0.25)
        assert start == streaming.steady_window_start(2.0, 10.0, 0.25)
        assert end == 10.0
