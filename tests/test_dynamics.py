"""Tests for repro.network.dynamics."""

import pytest

from repro.network import dynamics, topology
from repro.network.dynamic_graph import GraphError
from repro.network.edge import EdgeParams


class TestEdgeInsertionScenario:
    def test_new_edge_scheduled_not_present(self):
        base = topology.line(5)
        scenario = dynamics.with_edge_insertion(base, 0, 4, 20.0)
        assert scenario.new_edge == (0, 4)
        assert scenario.insertion_time == 20.0
        assert not scenario.graph.has_edge(0, 4)
        assert len(scenario.graph.pending_events()) == 2

    def test_base_graph_not_mutated(self):
        base = topology.line(5)
        dynamics.with_edge_insertion(base, 0, 4, 20.0)
        assert len(base.pending_events()) == 0

    def test_existing_edge_rejected(self):
        base = topology.line(5)
        with pytest.raises(GraphError):
            dynamics.with_edge_insertion(base, 0, 1, 20.0)

    def test_negative_time_rejected(self):
        base = topology.line(5)
        with pytest.raises(GraphError):
            dynamics.with_edge_insertion(base, 0, 4, -1.0)

    def test_edge_appears_after_popping_events(self):
        scenario = dynamics.with_edge_insertion(topology.line(4), 0, 3, 10.0)
        graph = scenario.graph
        for event in graph.pop_events_until(10.0):
            graph.apply_event(event)
        assert graph.has_edge(0, 3)

    def test_detection_skew_creates_asymmetry(self):
        base = topology.line(4, EdgeParams(tau=0.5))
        scenario = dynamics.with_edge_insertion(base, 0, 3, 10.0, detection_skew=0.5)
        graph = scenario.graph
        for event in graph.pop_events_until(10.0):
            graph.apply_event(event)
        assert graph.has_directed_edge(0, 3)
        assert not graph.has_directed_edge(3, 0)

    def test_line_with_end_to_end_insertion(self):
        scenario = dynamics.line_with_end_to_end_insertion(6, 15.0)
        assert scenario.new_edge == (0, 5)
        assert scenario.graph.has_edge(0, 1)

    def test_line_insertion_minimum_size(self):
        with pytest.raises(GraphError):
            dynamics.line_with_end_to_end_insertion(2, 15.0)


class TestPeriodicChurn:
    def test_churn_schedules_events(self):
        base = topology.line(6)
        scenario = dynamics.periodic_churn(
            base,
            [(0, 3), (2, 5)],
            period=10.0,
            horizon=50.0,
            seed=1,
        )
        assert len(scenario.pending_events()) > 0

    def test_churn_does_not_touch_base_edges(self):
        base = topology.line(6)
        scenario = dynamics.periodic_churn(
            base, [(0, 3)], period=10.0, horizon=100.0, seed=2
        )
        for event in scenario.pop_events_until(100.0):
            scenario.apply_event(event)
        assert all(scenario.has_edge(i, i + 1) for i in range(5))

    def test_candidate_overlapping_base_rejected(self):
        base = topology.line(6)
        with pytest.raises(GraphError):
            dynamics.periodic_churn(base, [(0, 1)], period=10.0, horizon=50.0)

    def test_bad_period_rejected(self):
        base = topology.line(6)
        with pytest.raises(GraphError):
            dynamics.periodic_churn(base, [(0, 3)], period=0.0, horizon=50.0)

    def test_deterministic_with_seed(self):
        base = topology.line(6)
        a = dynamics.periodic_churn(base, [(0, 3), (1, 4)], period=5.0, horizon=40.0, seed=9)
        b = dynamics.periodic_churn(base, [(0, 3), (1, 4)], period=5.0, horizon=40.0, seed=9)
        assert [
            (e.time, e.kind, e.source, e.target) for e in a.pending_events()
        ] == [(e.time, e.kind, e.source, e.target) for e in b.pending_events()]


class TestSlidingWindowLine:
    def test_backbone_always_present(self):
        graph = dynamics.sliding_window_line(6, window=2, shift_period=10.0, horizon=60.0)
        for event in graph.pop_events_until(60.0):
            graph.apply_event(event)
        assert all(graph.has_edge(i, i + 1) for i in range(5))

    def test_shortcuts_change_over_time(self):
        graph = dynamics.sliding_window_line(8, window=3, shift_period=5.0, horizon=40.0)
        assert len(graph.pending_events()) > 0

    def test_minimum_sizes(self):
        with pytest.raises(GraphError):
            dynamics.sliding_window_line(2, window=2, shift_period=5.0, horizon=20.0)
        with pytest.raises(GraphError):
            dynamics.sliding_window_line(6, window=1, shift_period=5.0, horizon=20.0)
