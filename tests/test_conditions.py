"""Tests for repro.core.conditions (FC, SC, MC and Condition 4.3)."""

import pytest

from repro.core.conditions import (
    TrueNeighborState,
    condition_4_3_holds,
    conditions_conflict,
    fast_condition_requires_fast,
    max_estimate_condition,
    slow_condition_requires_slow,
)
from repro.core.triggers import NeighborView, fast_trigger_level, slow_trigger_level


def state(params, neighbor, logical, *, level=5, epsilon=1.0, tau=0.5):
    return TrueNeighborState(
        neighbor=neighbor,
        logical=logical,
        kappa=params.kappa_for(epsilon, tau),
        tau=tau,
        level=level,
    )


@pytest.fixture
def kappa(params):
    return params.kappa_for(1.0, 0.5)


class TestFastCondition:
    def test_requires_fast_when_neighbor_ahead(self, params, kappa):
        logical = 50.0
        states = [state(params, 1, logical + kappa + 0.1)]
        assert fast_condition_requires_fast(logical, states, params, 4) == 1

    def test_not_required_when_blocked(self, params, kappa):
        logical = 50.0
        states = [
            state(params, 1, logical + kappa + 0.1),
            state(params, 2, logical - 2 * kappa),
        ]
        assert fast_condition_requires_fast(logical, states, params, 4) is None

    def test_not_required_without_ahead_neighbor(self, params, kappa):
        logical = 50.0
        states = [state(params, 1, logical + 0.1)]
        assert fast_condition_requires_fast(logical, states, params, 4) is None


class TestSlowCondition:
    def test_requires_slow_when_neighbor_behind(self, params, kappa):
        logical = 50.0
        states = [state(params, 1, logical - 2 * kappa)]
        assert slow_condition_requires_slow(logical, states, params, 4, delta=0.01) == 1

    def test_not_required_when_blocked(self, params, kappa):
        logical = 50.0
        states = [
            state(params, 1, logical - 2 * kappa),
            state(params, 2, logical + 3 * kappa),
        ]
        assert slow_condition_requires_slow(logical, states, params, 4, delta=0.01) is None

    def test_delta_must_be_positive(self, params, kappa):
        with pytest.raises(ValueError):
            slow_condition_requires_slow(50.0, [], params, 4, delta=0.0)


class TestLemma52:
    """Lemma 5.2: whenever FC (resp. SC) holds, the trigger also fires."""

    @pytest.mark.parametrize("seed", range(15))
    def test_triggers_implement_conditions(self, params, seed):
        import random

        rng = random.Random(seed)
        logical = 100.0
        epsilon, tau = 1.0, 0.5
        kappa = params.kappa_for(epsilon, tau)
        delta = params.delta_for(kappa, epsilon, tau)
        true_values = {
            i: logical + rng.uniform(-5 * kappa, 5 * kappa) for i in range(1, 5)
        }
        levels = {i: rng.randint(1, 4) for i in true_values}
        states = [
            state(params, i, value, level=levels[i]) for i, value in true_values.items()
        ]
        # Estimates may be off by at most epsilon in either direction.
        views = [
            NeighborView(
                neighbor=i,
                estimate=max(0.0, true_values[i] + rng.uniform(-epsilon, epsilon)),
                kappa=kappa,
                epsilon=epsilon,
                tau=tau,
                delta=delta,
                level=levels[i],
            )
            for i in true_values
        ]
        if fast_condition_requires_fast(logical, states, params, 4) is not None:
            assert fast_trigger_level(logical, views, params, 4) is not None
        if slow_condition_requires_slow(logical, states, params, 4, delta) is not None:
            assert slow_trigger_level(logical, views, params, 4) is not None

    @pytest.mark.parametrize("seed", range(15))
    def test_conditions_never_conflict(self, params, seed):
        import random

        rng = random.Random(seed + 100)
        logical = 100.0
        kappa = params.kappa_for(1.0, 0.5)
        delta = params.delta_for(kappa, 1.0, 0.5)
        states = [
            state(params, i, logical + rng.uniform(-6 * kappa, 6 * kappa), level=rng.randint(1, 4))
            for i in range(1, 6)
        ]
        assert not conditions_conflict(logical, states, params, 4, delta)


class TestMaxEstimateCondition:
    def test_slow_required_at_max(self, params):
        result = max_estimate_condition(10.0, 10.0, [9.0, 8.0], params)
        assert result.requires_slow
        assert not result.requires_fast

    def test_fast_required_when_lagging_behind_everyone(self, params):
        result = max_estimate_condition(10.0, 10.0 + params.iota, [11.0, 12.0], params)
        assert result.requires_fast
        assert not result.requires_slow

    def test_nothing_required_in_middle(self, params):
        result = max_estimate_condition(10.0, 11.0, [9.0, 12.0], params)
        assert not result.requires_fast
        assert not result.requires_slow


class TestCondition43:
    def test_holds(self):
        assert condition_4_3_holds(9.5, 9.0, 10.0, dynamic_diameter=1.0)

    def test_violated_when_above_true_max(self):
        assert not condition_4_3_holds(11.0, 9.0, 10.0, dynamic_diameter=1.0)

    def test_violated_when_below_own_clock(self):
        assert not condition_4_3_holds(8.0, 9.0, 10.0, dynamic_diameter=1.0)

    def test_violated_when_lagging_more_than_diameter(self):
        assert not condition_4_3_holds(8.0, 7.0, 10.0, dynamic_diameter=1.0)
