"""Unit tests for the vecsim subsystem: backend plumbing, kernels, batching,
graceful degradation without numpy, trace striding and executor fallback."""

import logging

import pytest

from repro.experiments import (
    ExperimentRunner,
    batch_key,
    execute_spec,
    execute_specs_batched,
    registry,
    scenario,
)
from repro.experiments.spec import ComponentSpec, ScenarioSpec, SpecError
from repro.fastsim import backend as backend_mod
from repro.fastsim import (
    BackendUnavailableError,
    UnsupportedScenarioError,
    backend_available,
    get_backend,
)

np = pytest.importorskip("numpy")

from repro.vecsim import VecContext, VecEngine, build_batch  # noqa: E402
from repro.vecsim.engine import LazyTraceSample, _mt_transplant_supported  # noqa: E402
from repro.vecsim.kernels import _firing_levels  # noqa: E402


def quick_spec(**overrides):
    defaults = dict(n=5, sim={"duration": 6.0})
    defaults.update(overrides)
    return scenario("quickstart_line", **defaults)


class TestVecBackendRegistration:
    def test_vec_backend_is_registered_and_available(self):
        assert backend_available("vec") is True
        backend = get_backend("vec")
        assert backend.name == "vec"

    def test_build_returns_a_vec_engine(self):
        materialised = registry.build_scenario(quick_spec(backend="vec"))
        engine = get_backend("vec").build(
            materialised.graph, materialised.algorithm_factory, materialised.config
        )
        assert isinstance(engine, VecEngine)

    def test_reference_and_fast_report_available(self):
        assert backend_available("reference") is True
        assert backend_available("fast") is True


class TestNumpyMissingDegradation:
    def test_build_raises_backend_unavailable(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_numpy_available", lambda: False)
        materialised = registry.build_scenario(quick_spec())
        with pytest.raises(BackendUnavailableError) as excinfo:
            get_backend("vec").build(
                materialised.graph, materialised.algorithm_factory, materialised.config
            )
        message = str(excinfo.value)
        assert "numpy" in message
        # The error lists the backends that can actually run.
        assert "fast" in message and "reference" in message

    def test_backend_stays_registered_but_unavailable(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_numpy_available", lambda: False)
        assert "vec" in backend_mod.backend_names()
        assert backend_available("vec") is False
        assert backend_mod.available_backend_names() == ["fast", "reference"]

    def test_cli_list_marks_unavailable_backend(self, monkeypatch, capsys):
        from repro.experiments import cli

        monkeypatch.setattr(backend_mod, "_numpy_available", lambda: False)
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vec [unavailable" in out

    def test_cli_list_shows_plain_names_when_available(self, capsys):
        from repro.experiments import cli

        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vec" in out
        assert "unavailable" not in out

    def test_runner_surfaces_unavailable_backend(self, monkeypatch, tmp_path):
        monkeypatch.setattr(backend_mod, "_numpy_available", lambda: False)
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        specs = [quick_spec(backend="vec"), quick_spec(n=6, backend="vec")]
        with pytest.raises(BackendUnavailableError, match="numpy"):
            runner.run_all(specs)


class TestVecEngineSurface:
    def build(self):
        materialised = registry.build_scenario(quick_spec())
        return VecEngine(
            materialised.graph, materialised.algorithm_factory, materialised.config
        )

    def test_snapshots_and_skew(self):
        engine = self.build()
        engine.run(5.0)
        logical = engine.logical_snapshot()
        assert sorted(logical) == [0, 1, 2, 3, 4]
        assert engine.global_skew() == pytest.approx(
            max(logical.values()) - min(logical.values()), abs=0.0
        )
        assert engine.logical_value(0) == logical[0]
        assert engine.hardware_value(0) == engine.hardware_snapshot()[0]
        assert engine.current_diameter() is None

    def test_algorithm_view_exposes_levels_and_mode(self):
        engine = self.build()
        engine.run(2.0)
        view = engine.algorithm(1)
        assert view.mode() in ("slow", "fast")
        assert view.levels.subset_chain_holds()
        assert view.neighbor_level(0) is not None

    def test_unsupported_configurations_raise(self):
        from repro.baselines.max_algorithm import max_propagation_factory

        materialised = registry.build_scenario(quick_spec())
        with pytest.raises(UnsupportedScenarioError, match="AOPT"):
            VecEngine(
                materialised.graph,
                max_propagation_factory(materialised.config.params.rho),
                materialised.config,
            )

    def test_running_backwards_raises(self):
        from repro.sim.engine import EngineError

        engine = self.build()
        engine.run(1.0)
        with pytest.raises(EngineError):
            engine.run_until(0.5)
        with pytest.raises(EngineError):
            engine.run(-1.0)

    def test_step_advances_one_dt(self):
        engine = self.build()
        dt = engine.dt
        engine.step()
        assert engine.time == pytest.approx(dt, abs=0.0)


class TestLazyTraceSample:
    def test_materializes_identical_dicts(self):
        materialised = registry.build_scenario(quick_spec())
        vec = VecEngine(
            materialised.graph, materialised.algorithm_factory, materialised.config
        )
        trace = vec.run(materialised.config.duration)
        sample = trace.final()
        assert isinstance(sample, LazyTraceSample)
        # Dicts materialize lazily and are cached.
        logical = sample.logical
        assert sample.logical is logical
        assert sorted(logical) == sorted(vec.nodes)
        assert set(sample.modes.values()) <= {"slow", "fast", "free"}
        # The sample methods agree with the dict contents.
        values = list(logical.values())
        assert sample.global_skew() == max(values) - min(values)
        assert sample.skew(0, 1) == abs(logical[0] - logical[1])


class TestMersenneTransplant:
    def test_numpy_stream_matches_python_stream(self):
        assert _mt_transplant_supported() is True

    def test_uniform_plan_consumes_the_python_stream(self):
        import random

        from repro.sim.delay import UniformRandomDelay
        from repro.vecsim.engine import _UniformDelayPlan

        model = UniformRandomDelay(0.2, 0.8, seed=99)
        shadow = random.Random(99)
        plan = _UniformDelayPlan(model)
        bounds = np.full(64, 2.0)
        delays = plan.delays(None, 0.0, bounds, None, None)
        expected = [
            min(shadow.uniform(0.2, 0.8) * 2.0, 2.0) for _ in range(64)
        ]
        assert delays.tolist() == expected
        # The stream hands over exactly where the batch stopped.
        plan.sync_python_rng()
        assert model._rng.random() == shadow.random()


class TestFiringLevels:
    def test_matches_bruteforce_prefix_counts(self):
        rng = np.random.RandomState(7)
        tables = np.sort(rng.rand(3, 4, 6), axis=2)
        table_id = rng.randint(0, 3, size=40)
        values = rng.rand(40) * 1.2
        for row in range(4):
            for side, op in (("right", np.greater_equal), ("left", np.greater)):
                counts = _firing_levels(values, tables, table_id, 3, row, side)
                for k in range(len(values)):
                    brute = int(op(values[k], tables[table_id[k], row]).sum())
                    assert counts[k] == brute


class TestRunBatching:
    def batch_specs(self):
        return [
            scenario("line_scaling", n=n, sim={"duration": 12.0}, backend="vec")
            for n in (4, 5, 6)
        ]

    def test_batched_runs_are_bit_identical_to_single_runs(self):
        specs = self.batch_specs()
        singles = [execute_spec(spec) for spec in specs]
        batched = execute_specs_batched(specs)
        for single, batch in zip(singles, batched):
            assert single["trace"] == batch["trace"]
            assert single["summary"] == batch["summary"]
            assert single["meta"] == batch["meta"]

    def test_build_batch_rejects_mixed_dt(self):
        from repro.fastsim.engine import FastsimError

        a = registry.build_scenario(quick_spec())
        b = registry.build_scenario(quick_spec(dt=0.1))
        with pytest.raises(FastsimError, match="dt"):
            build_batch(
                [
                    (a.graph, a.algorithm_factory, a.config),
                    (b.graph, b.algorithm_factory, b.config),
                ]
            )

    def test_batched_engine_cannot_run_alone(self):
        from repro.fastsim.engine import FastsimError

        a = registry.build_scenario(quick_spec())
        b = registry.build_scenario(quick_spec(n=6))
        context = build_batch(
            [
                (a.graph, a.algorithm_factory, a.config),
                (b.graph, b.algorithm_factory, b.config),
            ]
        )
        with pytest.raises(FastsimError, match="batched"):
            context.engines[0].run(1.0)

    def test_batch_key_groups_compatible_vec_specs(self):
        specs = self.batch_specs()
        keys = {batch_key(spec) for spec in specs}
        assert len(keys) == 1
        assert batch_key(specs[0].with_backend("fast")) is None
        different = scenario(
            "line_scaling", n=4, sim={"duration": 99.0}, backend="vec"
        )
        assert batch_key(different) != batch_key(specs[0])

    def test_runner_batches_vec_misses(self, tmp_path):
        specs = self.batch_specs()
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        runs, stats = runner.run_all(specs)
        assert stats.executed == 3
        assert stats.batched == 3
        # Batched executor results equal per-run execution, bit for bit.
        for spec, run in zip(specs, runs):
            expected = execute_spec(spec)
            assert run.summary.to_dict() == expected["summary"]
        # The second sweep is served from cache.
        runs2, stats2 = runner.run_all(specs)
        assert stats2.cached == 3
        assert [r.summary for r in runs2] == [r.summary for r in runs]

    def test_runner_batching_can_be_disabled(self, tmp_path):
        specs = self.batch_specs()
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1, batching=False)
        _, stats = runner.run_all(specs)
        assert stats.executed == 3
        assert stats.batched == 0


class TestExecutorFallback:
    def unsupported_spec(self, backend):
        return scenario(
            "quickstart_line",
            n=4,
            algorithm="MaxPropagation",
            sim={"duration": 2.0},
            backend=backend,
        )

    @pytest.mark.parametrize("backend", ["fast", "vec"])
    def test_falls_back_to_reference_with_warning(self, tmp_path, caplog, backend):
        spec = self.unsupported_spec(backend)
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.executor"):
            runs, stats = runner.run_all([spec])
        assert stats.fallbacks == 1
        (run,) = runs
        assert run.spec.backend == "reference"
        assert run.requested_backend == backend
        assert any("falling back" in record.message for record in caplog.records)
        # The result is the reference result.
        expected = execute_spec(spec.with_backend("reference"))
        assert run.summary.to_dict() == expected["summary"]
        # A repeated sweep serves the fallback from the reference cache and
        # reports it as cached, not executed.
        runs2, stats2 = runner.run_all([spec])
        assert stats2.cached == 1
        assert stats2.executed == 0
        assert runs2[0].from_cache is True

    def test_strict_backend_raises_instead(self, tmp_path):
        spec = self.unsupported_spec("vec")
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1, strict_backend=True)
        with pytest.raises(UnsupportedScenarioError):
            runner.run_all([spec])

    def test_fallback_works_through_the_worker_pool(self, tmp_path, caplog):
        specs = [self.unsupported_spec("vec"), self.unsupported_spec("fast")]
        runner = ExperimentRunner(cache_dir=tmp_path, workers=2)
        with caplog.at_level(logging.WARNING, logger="repro.experiments.executor"):
            runs, stats = runner.run_all(specs)
        assert stats.fallbacks == 2
        assert all(run.spec.backend == "reference" for run in runs)


class TestTraceStride:
    def strided(self, stride, backend="reference"):
        return scenario(
            "quickstart_line",
            n=5,
            sim={"duration": 12.0},
            trace_stride=stride,
            backend=backend,
        )

    def test_stride_is_excluded_from_the_content_hash(self):
        base = self.strided(1)
        strided = self.strided(5)
        assert strided.trace_stride == 5
        assert strided.content_hash() == base.content_hash()
        assert strided.base_seed() == base.base_seed()
        assert strided != base

    def test_stride_round_trips_and_validates(self):
        spec = self.strided(4)
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored.trace_stride == 4
        assert restored == spec
        with pytest.raises(SpecError):
            self.strided(0)
        with pytest.raises(SpecError):
            self.strided(1).with_trace_stride(2.5)

    def test_strided_trace_records_every_kth_sample(self):
        full = execute_spec(self.strided(1))
        strided = execute_spec(self.strided(3))
        full_times = [s["time"] for s in full["trace"]["samples"]]
        strided_times = [s["time"] for s in strided["trace"]["samples"]]
        assert len(strided_times) < len(full_times)
        # Every strided sample (except the forced final one) appears in the
        # full run at the same time with identical state.
        full_by_time = {s["time"]: s for s in full["trace"]["samples"]}
        for sample in strided["trace"]["samples"]:
            assert sample == full_by_time[sample["time"]]

    def test_strided_summaries_agree_across_backends(self):
        reference = execute_spec(self.strided(3, backend="reference"))
        vec = execute_spec(self.strided(3, backend="vec"))
        fast = execute_spec(self.strided(3, backend="fast"))
        assert reference["trace"] == vec["trace"] == fast["trace"]
        assert reference["summary"] == vec["summary"] == fast["summary"]

    def test_stride_gets_its_own_cache_entry(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        plain = self.strided(1)
        strided = self.strided(4)
        assert runner.cache_path(plain) != runner.cache_path(strided)
        assert ".s4" in runner.cache_path(strided).name
        runner.run_all([plain, strided])
        _, stats = runner.run_all([plain, strided])
        assert stats.cached == 2

    def test_cli_accepts_trace_stride_override(self, tmp_path, capsys):
        from repro.experiments import cli

        assert (
            cli.main(
                [
                    "run",
                    "quickstart_line",
                    "--set",
                    "n=4",
                    "--set",
                    "sim.duration=2.0",
                    "--set",
                    "trace_stride=2",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
