"""Sweep-level telemetry: run_sweep event streams on every execution path.

A sweep can satisfy a spec four ways -- inline execution, vector batch,
worker pool, cache hit -- and the telemetry contract is the same for all of
them: every record validates against the schema, every run gets its
``run_started``/``run_finished`` bracket, and watchdog firings appear either
live or replayed (``replayed: true``) from the cached payload.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner, scenario
from repro.experiments.executor import run_sweep, ResultCache
from repro.telemetry import JsonlLog, SweepTelemetry, validate_jsonl, validate_records


def collect_telemetry():
    records = []
    return records, SweepTelemetry(records.append)


def kinds(records):
    counts = {}
    for record in records:
        counts[record["event"]] = counts.get(record["event"], 0) + 1
    return counts


def stable_specs(backend="reference"):
    return [
        scenario("line_scaling", n=n, until_stable=True, backend=backend)
        for n in (5, 6)
    ]


class TestInlineExecution:
    def test_stream_brackets_and_live_watchdogs(self, tmp_path):
        records, telemetry = collect_telemetry()
        specs = stable_specs()
        runs, stats = run_sweep(
            specs, cache=ResultCache(tmp_path), telemetry=telemetry
        )
        assert stats.executed == 2
        validate_records(records)
        counts = kinds(records)
        assert counts["sweep_started"] == 1
        assert counts["run_started"] == 2
        assert counts["run_finished"] == 2
        assert counts["sweep_finished"] == 1
        assert counts["progress"] >= 2
        live = [r for r in records if r["event"] == "watchdog_fired"]
        assert len(live) == 2  # one convergence firing per run
        assert not any(r.get("replayed") for r in live)
        for record in live:
            assert record["watchdog"] == "watchdog_convergence"
            assert record["spec_hash"] == specs[record["run"]].content_hash()
        # Envelope ordering: the stream opens and closes the sweep.
        assert records[0]["event"] == "sweep_started"
        assert records[-1]["event"] == "sweep_finished"

    def test_cache_hits_replay_watchdogs(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = stable_specs()
        run_sweep(specs, cache=cache)  # populate
        records, telemetry = collect_telemetry()
        runs, stats = run_sweep(specs, cache=cache, telemetry=telemetry)
        assert stats.cached == 2
        validate_records(records)
        replayed = [r for r in records if r["event"] == "watchdog_fired"]
        assert len(replayed) == 2
        assert all(r["replayed"] is True for r in replayed)
        assert all(r["state"] == "cached"
                   for r in records if r["event"] == "run_finished")

    def test_progress_events_are_ordered_per_run(self, tmp_path):
        records, telemetry = collect_telemetry()
        run_sweep(
            [scenario("line_scaling", n=5, sim={"duration": 60.0})],
            cache=ResultCache(tmp_path),
            telemetry=telemetry,
        )
        progress = [r for r in records if r["event"] == "progress"]
        assert progress, "long runs must emit progress events"
        times = [r["sim_time"] for r in progress]
        samples = [r["samples"] for r in progress]
        assert times == sorted(times)
        assert samples == sorted(samples)


class TestPoolAndBatchedExecution:
    def test_worker_pool_replays_watchdogs(self, tmp_path):
        records, telemetry = collect_telemetry()
        specs = stable_specs()
        runs, stats = run_sweep(
            specs, cache=ResultCache(tmp_path), workers=2, telemetry=telemetry
        )
        assert stats.executed == 2
        validate_records(records)
        fired = [r for r in records if r["event"] == "watchdog_fired"]
        # A sink cannot cross the process boundary: pool firings arrive
        # replayed from the returned payloads instead of live.
        assert len(fired) == 2
        assert all(r["replayed"] is True for r in fired)

    def test_vec_batched_runs_stream_live(self, tmp_path):
        pytest.importorskip("numpy")
        records, telemetry = collect_telemetry()
        # Same duration so the two specs share a batch group.
        specs = [
            scenario(
                "line_scaling",
                n=n,
                until_stable=True,
                backend="vec",
                sim={"duration": 400.0},
            )
            for n in (5, 6)
        ]
        runs, stats = run_sweep(
            specs, cache=ResultCache(tmp_path), telemetry=telemetry
        )
        assert stats.batched == 2
        validate_records(records)
        fired = [r for r in records if r["event"] == "watchdog_fired"]
        assert len(fired) == 2
        assert not any(r.get("replayed") for r in fired)
        done = [r for r in records if r["event"] == "run_finished"]
        assert all(r["batched"] for r in done)


class TestRunnerAndJsonl:
    def test_runner_passthrough_writes_valid_jsonl(self, tmp_path):
        log = JsonlLog(tmp_path / "sweep.jsonl")
        runner = ExperimentRunner(tmp_path / "cache")
        runner.run_all(
            [scenario("line_scaling", n=5, until_stable=True)],
            telemetry=SweepTelemetry(log.write_record),
        )
        log.close()
        assert validate_jsonl(tmp_path / "sweep.jsonl") >= 4

    def test_reused_emitter_replays_for_second_sweep(self, tmp_path):
        # One emitter across sweeps (the service's usage): runs marked live
        # in sweep 1 must not suppress replay in sweep 2.
        log = []
        telemetry = SweepTelemetry(log.append)
        cache = ResultCache(tmp_path)
        spec = scenario("line_scaling", n=6, until_stable=True)
        run_sweep([spec], cache=cache, telemetry=telemetry)
        live = [r for r in log if r["event"] == "watchdog_fired"]
        assert len(live) == 1 and not live[0].get("replayed")
        del log[:]
        run_sweep([spec], cache=cache, telemetry=telemetry)
        replayed = [r for r in log if r["event"] == "watchdog_fired"]
        assert len(replayed) == 1 and replayed[0]["replayed"] is True
