"""Unit tests for the AOPT algorithm class, driven through a fake NodeAPI."""

import pytest

from repro.core.algorithm import AOPT, AOPTConfig, aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.neighbor_sets import FULLY_INSERTED
from repro.core.parameters import Parameters
from repro.core.skew_estimates import StaticGlobalSkewEstimate
from repro.estimate.messages import ClockBroadcast, InsertEdgeMessage
from repro.network.edge import EdgeParams

from conftest import FakeNodeAPI


def make_config(params, *, global_skew=50.0, max_level=4, immediate=False):
    return AOPTConfig(
        params=params,
        global_skew=StaticGlobalSkewEstimate(global_skew),
        max_level=max_level,
        broadcast_interval=1.0,
        insertion_duration=insertion_mod.scaled_insertion_duration(0.01),
        immediate_insertion=immediate,
    )


def make_node(params, node_id=0, **kwargs):
    config = make_config(params, **kwargs)
    algorithm = AOPT(config)
    api = FakeNodeAPI(node_id, edge_params=EdgeParams(epsilon=1.0, tau=0.5, delay=2.0))
    algorithm.bind(api)
    return algorithm, api


class TestConfig:
    def test_for_bound_derives_levels(self, params):
        config = AOPTConfig.for_bound(params, 100.0, kappa_min=4.0)
        assert config.max_level == params.levels_for(100.0, 4.0)

    def test_invalid_max_level_rejected(self, params):
        with pytest.raises(ValueError):
            AOPTConfig(
                params=params,
                global_skew=StaticGlobalSkewEstimate(10.0),
                max_level=0,
            )

    def test_invalid_broadcast_interval_rejected(self, params):
        with pytest.raises(ValueError):
            AOPTConfig(
                params=params,
                global_skew=StaticGlobalSkewEstimate(10.0),
                max_level=2,
                broadcast_interval=0.0,
            )

    def test_factory_builds_independent_instances(self, params):
        factory = aopt_factory(make_config(params))
        a, b = factory(0), factory(1)
        assert a is not b
        assert isinstance(a, AOPT)


class TestStartupAndNeighbors:
    def test_initial_neighbors_fully_inserted(self, params):
        algorithm, api = make_node(params)
        api.neighbor_set = {1, 2}
        algorithm.on_start(0.0, [1, 2])
        assert algorithm.neighbor_level(1) == FULLY_INSERTED
        assert algorithm.neighbor_level(2) == FULLY_INSERTED

    def test_discovered_edge_starts_at_level_zero(self, params):
        algorithm, api = make_node(params)
        api.neighbor_set = {3}
        algorithm.on_edge_discovered(1.0, 3)
        assert algorithm.neighbor_level(3) == 0

    def test_edge_loss_removes_all_state(self, params):
        algorithm, api = make_node(params)
        api.neighbor_set = {1}
        algorithm.on_start(0.0, [1])
        algorithm.on_edge_lost(5.0, 1)
        assert algorithm.neighbor_level(1) is None
        assert algorithm.insertion_schedule(1) is None

    def test_leader_schedules_handshake_check(self, params):
        algorithm, api = make_node(params, node_id=0)
        api.neighbor_set = {5}
        algorithm.on_edge_discovered(1.0, 5)
        assert len(api.scheduled) == 1

    def test_follower_does_not_schedule_handshake(self, params):
        algorithm, api = make_node(params, node_id=9)
        api.neighbor_set = {5}
        algorithm.on_edge_discovered(1.0, 5)
        assert api.scheduled == []

    def test_immediate_insertion_mode(self, params):
        algorithm, api = make_node(params, immediate=True)
        api.neighbor_set = {5}
        algorithm.on_edge_discovered(1.0, 5)
        assert algorithm.levels.is_fully_inserted(5)


class TestHandshake:
    def test_leader_sends_insertedge_after_wait(self, params):
        algorithm, api = make_node(params, node_id=0)
        api.neighbor_set = {5}
        algorithm.on_edge_discovered(0.0, 5)
        wait = insertion_mod.leader_wait(params, api.edge_params(5))
        api.advance(wait + 0.1)
        api.fire_due(api.time)
        assert len(api.sent) == 1
        neighbor, message = api.sent[0]
        assert neighbor == 5
        assert isinstance(message, InsertEdgeMessage)
        assert algorithm.insertion_schedule(5) is not None

    def test_leader_aborts_if_edge_disappeared(self, params):
        algorithm, api = make_node(params, node_id=0)
        api.neighbor_set = {5}
        algorithm.on_edge_discovered(0.0, 5)
        wait = insertion_mod.leader_wait(params, api.edge_params(5))
        algorithm.on_edge_lost(1.0, 5)
        api.neighbor_set = set()
        api.advance(wait + 0.1)
        api.fire_due(api.time)
        assert api.sent == []
        assert algorithm.insertion_schedule(5) is None

    def test_leader_aborts_if_edge_flapped(self, params):
        algorithm, api = make_node(params, node_id=0)
        api.neighbor_set = {5}
        algorithm.on_edge_discovered(0.0, 5)
        wait = insertion_mod.leader_wait(params, api.edge_params(5))
        # The edge drops and reappears shortly before the check fires.
        algorithm.on_edge_lost(wait / 2, 5)
        algorithm.on_edge_discovered(wait - 0.1, 5)
        api.advance(wait + 0.05)
        api.fire_due(api.time)
        assert api.sent == []

    def test_follower_installs_schedule_from_message(self, params):
        algorithm, api = make_node(params, node_id=9)
        api.neighbor_set = {5}
        algorithm.on_edge_discovered(0.0, 5)
        message = InsertEdgeMessage(
            edge=(5, 9), insertion_anchor=80.0, global_skew_estimate=50.0, max_estimate=0.0
        )
        api.advance(5.0)
        algorithm.on_message(5.0, 5, message)
        assert len(api.scheduled) == 1
        api.advance(insertion_mod.follower_wait(params, api.edge_params(5)) + 0.1)
        api.fire_due(api.time)
        schedule = algorithm.insertion_schedule(5)
        assert schedule is not None
        assert schedule.anchor >= 80.0

    def test_leader_and_follower_agree_on_times(self, params):
        leader, leader_api = make_node(params, node_id=0)
        follower, follower_api = make_node(params, node_id=5)
        leader_api.neighbor_set = {5}
        follower_api.neighbor_set = {0}
        leader.on_edge_discovered(0.0, 5)
        follower.on_edge_discovered(0.2, 0)
        wait = insertion_mod.leader_wait(params, leader_api.edge_params(5))
        leader_api.advance(wait + 0.1)
        leader_api.fire_due(leader_api.time)
        _, message = leader_api.sent[0]
        follower_api.advance(wait + 1.0)
        follower.on_message(follower_api.time, 0, message)
        follower_api.advance(insertion_mod.follower_wait(params, follower_api.edge_params(0)) + 0.1)
        follower_api.fire_due(follower_api.time)
        leader_schedule = leader.insertion_schedule(5)
        follower_schedule = follower.insertion_schedule(0)
        assert follower_schedule is not None
        assert leader_schedule.level_times == follower_schedule.level_times


class TestControl:
    def test_slow_by_default(self, params):
        algorithm, api = make_node(params)
        decision = algorithm.control(0.0)
        assert decision.multiplier == 1.0
        assert algorithm.mode() == "slow"

    def test_fast_when_neighbor_ahead(self, params):
        algorithm, api = make_node(params)
        api.neighbor_set = {1}
        algorithm.on_start(0.0, [1])
        kappa = params.kappa_for(1.0, 0.5)
        api.logical_value = 10.0
        api.hardware_value = 10.0
        api.estimates = {1: 10.0 + 2 * kappa}
        decision = algorithm.control(0.0)
        assert decision.multiplier == pytest.approx(1 + params.mu)
        assert algorithm.mode() == "fast"
        assert algorithm.last_trigger().mode == "fast"

    def test_slow_when_neighbor_behind(self, params):
        algorithm, api = make_node(params)
        api.neighbor_set = {1}
        algorithm.on_start(0.0, [1])
        kappa = params.kappa_for(1.0, 0.5)
        api.logical_value = 20.0
        api.hardware_value = 20.0
        api.estimates = {1: 20.0 - 2 * kappa}
        algorithm.max_tracker.observe_remote(25.0)  # would otherwise push fast
        decision = algorithm.control(0.0)
        assert decision.multiplier == 1.0
        assert algorithm.last_trigger().mode == "slow"

    def test_max_estimate_pulls_lagging_node_fast(self, params):
        algorithm, api = make_node(params)
        algorithm.max_tracker.observe_remote(5.0)
        decision = algorithm.control(0.0)
        assert decision.multiplier == pytest.approx(1 + params.mu)

    def test_never_jumps(self, params):
        algorithm, api = make_node(params)
        algorithm.max_tracker.observe_remote(50.0)
        decision = algorithm.control(0.0)
        assert decision.jump_to is None

    def test_broadcasts_periodically(self, params):
        algorithm, api = make_node(params)
        api.neighbor_set = {1}
        algorithm.on_start(0.0, [1])
        algorithm.control(0.0)
        assert len([p for _, p in api.sent if isinstance(p, ClockBroadcast)]) == 1
        # No second broadcast before the interval elapses.
        api.advance(0.5)
        algorithm.control(0.5)
        assert len([p for _, p in api.sent if isinstance(p, ClockBroadcast)]) == 1
        api.advance(0.6)
        algorithm.control(1.1)
        assert len([p for _, p in api.sent if isinstance(p, ClockBroadcast)]) == 2

    def test_broadcast_carries_max_estimate(self, params):
        algorithm, api = make_node(params)
        api.neighbor_set = {1}
        algorithm.on_start(0.0, [1])
        algorithm.max_tracker.observe_remote(42.0)
        algorithm.control(0.0)
        _, payload = api.sent[0]
        assert payload.max_estimate >= 42.0

    def test_clock_broadcast_updates_max_estimate(self, params):
        algorithm, api = make_node(params)
        algorithm.on_message(
            0.0, 1, ClockBroadcast(sender=1, logical=5.0, max_estimate=9.0)
        )
        assert algorithm.max_estimate() >= 9.0

    def test_insertion_levels_applied_when_logical_crosses_times(self, params):
        algorithm, api = make_node(params, node_id=0)
        api.neighbor_set = {5}
        algorithm.on_edge_discovered(0.0, 5)
        wait = insertion_mod.leader_wait(params, api.edge_params(5))
        api.advance(wait + 0.1)
        api.fire_due(api.time)
        schedule = algorithm.insertion_schedule(5)
        assert schedule is not None
        # Jump the fake logical clock past the final insertion time.
        api.logical_value = schedule.final_time + 1.0
        api.hardware_value = api.logical_value
        algorithm.control(api.time)
        assert algorithm.levels.is_fully_inserted(5)
        assert algorithm.insertion_schedule(5) is None
