"""Tests for repro.network.paths."""

import pytest

from repro.core.parameters import Parameters
from repro.network import paths, topology
from repro.network.dynamic_graph import GraphError
from repro.network.edge import EdgeParams


@pytest.fixture
def weighted_line():
    graph = topology.line(5, EdgeParams(epsilon=2.0, tau=0.5, delay=1.0))
    return graph


class TestWeights:
    def test_epsilon_weight(self, weighted_line):
        weight = paths.epsilon_weight(weighted_line)
        assert weight(0, 1) == 2.0

    def test_hop_weight(self, weighted_line):
        weight = paths.hop_weight(weighted_line)
        assert weight(0, 1) == 1.0

    def test_kappa_weight(self, weighted_line):
        params = Parameters(rho=0.01, mu=0.1)
        weight = paths.kappa_weight(weighted_line, params)
        assert weight(0, 1) == pytest.approx(params.kappa_for(2.0, 0.5))


class TestPathHelpers:
    def test_path_weight(self, weighted_line):
        weight = paths.epsilon_weight(weighted_line)
        assert paths.path_weight([0, 1, 2, 3], weight) == pytest.approx(6.0)

    def test_path_weight_single_node(self, weighted_line):
        assert paths.path_weight([2], paths.epsilon_weight(weighted_line)) == 0.0

    def test_path_weight_empty_rejected(self, weighted_line):
        with pytest.raises(GraphError):
            paths.path_weight([], paths.epsilon_weight(weighted_line))

    def test_path_exists(self, weighted_line):
        assert paths.path_exists(weighted_line, [0, 1, 2])
        assert not paths.path_exists(weighted_line, [0, 2])


class TestDistances:
    def test_shortest_distances_line(self, weighted_line):
        dist = paths.shortest_distances(weighted_line, 0)
        assert dist[4] == pytest.approx(8.0)
        assert dist[0] == 0.0

    def test_shortest_path_endpoints(self, weighted_line):
        path = paths.shortest_path(weighted_line, 0, 4)
        assert path == [0, 1, 2, 3, 4]

    def test_shortest_path_prefers_shortcut(self):
        graph = topology.line(5, EdgeParams(epsilon=1.0))
        graph.add_edge(0, 4, EdgeParams(epsilon=1.5))
        assert paths.shortest_path(graph, 0, 4) == [0, 4]
        assert paths.weighted_distance(graph, 0, 4) == pytest.approx(1.5)

    def test_unknown_node_rejected(self, weighted_line):
        with pytest.raises(GraphError):
            paths.shortest_distances(weighted_line, 99)

    def test_no_path_raises(self):
        graph = topology.from_edge_list(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            paths.weighted_distance(graph, 0, 3)

    def test_weighted_diameter_line(self, weighted_line):
        assert paths.weighted_diameter(weighted_line) == pytest.approx(8.0)

    def test_weighted_diameter_with_hop_weight(self, weighted_line):
        assert paths.weighted_diameter(
            weighted_line, paths.hop_weight(weighted_line)
        ) == pytest.approx(4.0)

    def test_weighted_diameter_requires_connected(self):
        graph = topology.from_edge_list(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            paths.weighted_diameter(graph)

    def test_all_pairs_symmetric(self, weighted_line):
        distances = paths.all_pairs_distances(weighted_line)
        assert distances[(0, 3)] == distances[(3, 0)]
        assert distances[(2, 2)] == 0.0

    def test_pairs_at_distance(self, weighted_line):
        pairs = paths.pairs_at_distance(weighted_line, 2.0, 2.0)
        assert set(pairs) == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph = topology.random_connected(12, 0.3, seed=5)
        reference = networkx.Graph()
        for key in graph.edges():
            reference.add_edge(key.a, key.b, weight=graph.edge_params(key.a, key.b).epsilon)
        expected = dict(networkx.shortest_path_length(reference, 0, weight="weight"))
        measured = paths.shortest_distances(graph, 0)
        for node, value in expected.items():
            assert measured[node] == pytest.approx(value)
