"""The telemetry event layer: strict JSON, schema validation, JsonlLog.

Everything here is stdlib-only by design -- this file is part of the
no-numpy CI leg's coverage of ``repro.telemetry``.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.metrics import build_pipeline
from repro.metrics.pipeline import ObserverReport
from repro.telemetry import (
    EVENT_SCHEMA_VERSION,
    JsonlLog,
    TelemetryError,
    iter_jsonl,
    make_event,
    sanitize_json,
    validate_event,
    validate_jsonl,
    validate_records,
)


class TestSanitizeJson:
    def test_nan_becomes_null(self):
        assert sanitize_json(float("nan")) is None

    def test_infinities_become_sentinels(self):
        assert sanitize_json(float("inf")) == "Infinity"
        assert sanitize_json(float("-inf")) == "-Infinity"

    def test_nested_structures_and_tuples(self):
        value = {
            "a": [1.0, float("nan"), (float("inf"), "x")],
            "b": {"c": float("-inf")},
        }
        assert sanitize_json(value) == {
            "a": [1.0, None, ["Infinity", "x"]],
            "b": {"c": "-Infinity"},
        }

    def test_finite_values_pass_through(self):
        value = {"x": 1.5, "y": [0, True, None, "s"]}
        assert sanitize_json(value) == value

    def test_output_is_strictly_serialisable(self):
        dirty = {"worst": [float("nan"), float("inf"), {"k": float("-inf")}]}
        json.dumps(sanitize_json(dirty), allow_nan=False)  # must not raise


class TestEventSchema:
    def test_make_event_stamps_envelope(self):
        record = make_event("sweep_started", total=3)
        assert record["schema"] == EVENT_SCHEMA_VERSION
        assert record["event"] == "sweep_started"
        assert record["total"] == 3
        assert isinstance(record["ts"], float)
        validate_event(record)

    def test_make_event_sanitizes_fields(self):
        record = make_event("progress", run=0, sim_time=float("nan"), samples=1)
        assert record["sim_time"] is None
        validate_event(record)

    def test_unknown_event_rejected(self):
        with pytest.raises(TelemetryError):
            make_event("no_such_event")
        with pytest.raises(TelemetryError):
            validate_event({"ts": 1.0, "schema": EVENT_SCHEMA_VERSION, "event": "nope"})

    def test_missing_required_field_rejected(self):
        record = make_event("run_started", run=0, spec_hash="abc", backend="fast")
        del record["spec_hash"]
        with pytest.raises(TelemetryError):
            validate_event(record)

    def test_wrong_schema_version_rejected(self):
        record = make_event("sweep_started", total=1)
        record["schema"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(TelemetryError):
            validate_event(record)

    def test_validate_records_reports_position(self):
        good = make_event("sweep_started", total=1)
        with pytest.raises(TelemetryError):
            validate_records([good, {"not": "an event"}])


class TestObserverReportStrictness:
    def test_to_payload_sanitizes_non_finite_floats(self):
        report = ObserverReport(
            sample_count=1,
            payloads={"broken": {"v": float("nan"), "w": float("inf")}},
        )
        payload = report.to_payload()
        assert payload["observers"]["broken"] == {"v": None, "w": "Infinity"}
        json.dumps(payload, allow_nan=False)  # must not raise

    def test_live_pipeline_report_is_strict(self):
        from repro.network import topology

        pipeline = build_pipeline(
            ("global_skew",), graph=topology.line(3), duration=1.0, dt=0.5
        )
        json.dumps(pipeline.finalize().to_payload(), allow_nan=False)


class TestJsonlLog:
    def test_disabled_log_swallows_writes(self):
        log = JsonlLog(None)
        assert not log.enabled
        log.write("service_start")  # no-op, must not raise
        log.close()

    def test_write_produces_schema_valid_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlLog(path)
        log.write("sweep_started", total=2)
        log.write("progress", run=0, sim_time=1.5, samples=3)
        log.close()
        assert validate_jsonl(path) == 2

    def test_non_finite_fields_never_break_the_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlLog(path)
        log.write("progress", run=0, sim_time=float("nan"), samples=1)
        log.write_record(
            make_event("watchdog_fired", run=0, watchdog="w",
                       sim_time=0.0, value=float("inf"), threshold=1.0)
        )
        log.close()
        records = list(iter_jsonl(path))
        assert records[0]["sim_time"] is None
        assert records[1]["value"] == "Infinity"
        validate_records(records)

    def test_unserialisable_record_degrades_to_stub_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlLog(path)
        log.write("http", client=object())  # default=str handles this
        log.close()
        (record,) = list(iter_jsonl(path))
        assert record["event"] == "http"

    def test_rotation_caps_file_size(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlLog(path, max_bytes=600)
        for i in range(50):
            log.write("progress", run=0, sim_time=float(i), samples=i)
        log.close()
        rotated = path.with_name(path.name + ".1")
        assert rotated.exists()
        assert path.stat().st_size <= 600 + 1024  # one record of slack
        # Both generations hold valid JSONL; the fresh file leads with the
        # rotation marker.
        records = list(iter_jsonl(path))
        validate_records(records)
        assert records[0]["event"] == "log_rotated"
        validate_records(list(iter_jsonl(rotated)))

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlLog(path)
        threads, writes = 8, 200
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(writes):
                log.write("progress", run=worker, sim_time=float(i), samples=i)

        pool = [threading.Thread(target=hammer, args=(w,)) for w in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        log.close()
        records = list(iter_jsonl(path))  # raises on any torn line
        assert len(records) == threads * writes
        validate_records(records)
        per_worker = {}
        for record in records:
            per_worker.setdefault(record["run"], []).append(record["samples"])
        # Each writer's records appear in its own program order.
        for samples in per_worker.values():
            assert samples == sorted(samples)

    def test_iter_jsonl_rejects_bare_nan_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1.0, "schema": 1, "event": "progress", "v": NaN}\n')
        with pytest.raises(ValueError):
            list(iter_jsonl(path))

    def test_reopened_log_counts_existing_bytes_toward_rotation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = JsonlLog(path)
        for i in range(20):
            first.write("progress", run=0, sim_time=float(i), samples=i)
        first.close()
        size = path.stat().st_size
        second = JsonlLog(path, max_bytes=size)  # already at the cap
        second.write("progress", run=0, sim_time=99.0, samples=99)
        second.close()
        assert path.with_name(path.name + ".1").exists()
