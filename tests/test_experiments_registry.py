"""Tests for repro.experiments.registry: factories and named scenarios."""

import pytest

from repro.experiments import (
    ALGORITHMS,
    DELAYS,
    DRIFTS,
    DYNAMICS,
    SCENARIOS,
    TOPOLOGIES,
    build_scenario,
    scenario,
)
from repro.experiments.registry import (
    RegistryError,
    build_graph,
    resolve_algorithm_name,
)
from repro.experiments.spec import SpecError
from repro.network.dynamic_graph import GraphError
from repro.sim.runner import SimulationConfig

#: Small builder overrides so every named scenario materialises quickly.
FAST_OVERRIDES = {
    "line_scaling": {"n": 4, "sim": {"duration": 4.0}},
    "end_to_end_insertion": {"n": 4, "insertion_time": 1.0, "sim": {"duration": 5.0}},
    "grid_periodic_churn": {"rows": 2, "cols": 3, "duration": 30.0},
    "random_connected_sliding_window": {"n": 6, "duration": 30.0},
    "star_hub_failover": {"n": 6, "failover_time": 5.0, "duration": 20.0},
    "ring_sinusoidal_drift": {"n": 6, "duration": 10.0},
    "quickstart_line": {"n": 4, "duration": 5.0},
}


class TestRegistries:
    def test_all_topology_generators_registered(self):
        for name in (
            "line",
            "ring",
            "star",
            "complete",
            "grid",
            "binary_tree",
            "random_tree",
            "random_connected",
            "sliding_window_line",
        ):
            assert name in TOPOLOGIES

    def test_all_drift_models_registered(self):
        for name in (
            "none",
            "random_constant",
            "random_walk",
            "two_group",
            "ramp",
            "sinusoidal",
        ):
            assert name in DRIFTS

    def test_all_delay_models_registered(self):
        for name in ("zero", "fixed_fraction", "uniform", "directional"):
            assert name in DELAYS

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(RegistryError, match="unknown topology"):
            TOPOLOGIES.get("moebius")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            TOPOLOGIES.register("line", lambda edge: None)

    def test_algorithm_aliases(self):
        assert resolve_algorithm_name("AOPT") == "aopt"
        assert resolve_algorithm_name("max_propagation") == "max_propagation"
        with pytest.raises(RegistryError):
            resolve_algorithm_name("gps")


class TestNamedScenarios:
    def test_required_composite_scenarios_listed(self):
        names = SCENARIOS.names()
        for required in (
            "grid_periodic_churn",
            "random_connected_sliding_window",
            "star_hub_failover",
            "ring_sinusoidal_drift",
        ):
            assert required in names

    @pytest.mark.parametrize("name", sorted(FAST_OVERRIDES))
    def test_every_named_scenario_materialises(self, name):
        spec = scenario(name, **FAST_OVERRIDES[name])
        materialised = build_scenario(spec)
        assert materialised.graph.is_connected()
        assert isinstance(materialised.config, SimulationConfig)
        assert materialised.base_edges
        assert materialised.meta["label"] == spec.label
        # Seeds for the default delay model and the estimate layer were
        # pinned to the spec hash.
        assert materialised.config.delay_seed is not None
        assert materialised.config.estimate_seed is not None

    def test_materialisation_is_deterministic_for_random_topologies(self):
        spec = scenario("random_connected_sliding_window", n=8, duration=20.0)
        edges_a = sorted((k.a, k.b) for k in build_scenario(spec).graph.edges())
        edges_b = sorted((k.a, k.b) for k in build_scenario(spec).graph.edges())
        assert edges_a == edges_b

    def test_line_scaling_matches_benchmark_structure(self):
        spec = scenario("line_scaling", n=6)
        assert spec.topology.args == {"n": 6}
        assert spec.sim["duration"] == pytest.approx(100.0 + 60.0 * 6)
        assert spec.algorithm.name == "aopt"
        assert spec.algorithm.args["global_skew_bound"] == pytest.approx(
            spec.notes["reference_global_skew_bound"]
        )
        assert spec.initial_ramp_per_edge is not None

    def test_end_to_end_insertion_meta(self):
        spec = scenario("end_to_end_insertion", n=5, insertion_time=2.0)
        materialised = build_scenario(spec)
        assert materialised.meta["new_edge"] == (0, 4)
        assert materialised.meta["insertion_time"] == 2.0
        assert materialised.meta["insertion_span"] > 0.0
        # The new edge is scheduled, not present at time zero.
        assert (0, 4) not in materialised.base_edges


class TestDynamics:
    def test_hub_failover_keeps_primary_backup_edge(self):
        spec = scenario("star_hub_failover", n=6, failover_time=5.0, duration=20.0)
        graph, meta = build_graph(spec)
        assert meta["primary_hub"] == 0
        assert meta["backup_hub"] == 1
        assert graph.has_edge(0, 1)
        # Leaves get a scheduled backup edge and a scheduled primary removal.
        kinds = {(e.kind, e.source, e.target) for e in graph.pending_events()}
        assert ("up", 1, 2) in kinds
        assert ("down", 0, 2) in kinds

    def test_hub_failover_rejects_nonpositive_overlap(self):
        spec = scenario("star_hub_failover", n=6, failover_time=5.0, overlap=0.0)
        with pytest.raises(GraphError, match="overlap"):
            build_graph(spec)

    def test_rotating_shortcuts_reports_candidates(self):
        spec = scenario("random_connected_sliding_window", n=8, duration=40.0)
        _, meta = build_graph(spec)
        assert meta["shortcut_count"] > 0

    def test_periodic_churn_candidates_avoid_base_edges(self):
        from repro.network import topology
        from repro.network.edge import EdgeParams

        spec = scenario("grid_periodic_churn", rows=2, cols=3, duration=60.0)
        _, meta = build_graph(spec)
        backbone = topology.grid(2, 3, EdgeParams(**spec.edge))
        assert meta["churn_candidates"]
        for u, v in meta["churn_candidates"]:
            assert not backbone.has_edge(u, v)


class TestDriftFactories:
    def test_two_group_fast_selector(self):
        fast_upper = DRIFTS.get("two_group")(0.01, [0, 1, 2, 3])
        assert fast_upper.rate(3, 0.0) == pytest.approx(1.01)
        assert fast_upper.rate(0, 0.0) == pytest.approx(0.99)
        fast_lower = DRIFTS.get("two_group")(0.01, [0, 1, 2, 3], fast="lower")
        assert fast_lower.rate(0, 0.0) == pytest.approx(1.01)
        with pytest.raises(SpecError):
            DRIFTS.get("two_group")(0.01, [0, 1], fast="sideways")

    def test_threshold_gradient_default_threshold(self):
        spec = scenario("line_scaling", n=9, algorithm="ThresholdGradient")
        materialised = build_scenario(spec)
        assert materialised.global_skew_bound is None
        assert callable(materialised.algorithm_factory)
