"""Tests for repro.experiments.executor: caching, parallelism, grids."""

import json

import pytest

from repro.experiments import (
    ExperimentRunner,
    execute_spec,
    expand_grid,
    scenario,
)
from repro.experiments.executor import ExecutorError
from repro.experiments.results import trace_from_payload, trace_to_payload

TINY_SIM = {"duration": 5.0, "dt": 0.1}


def tiny_spec(n=4, algorithm="AOPT"):
    return scenario("line_scaling", n=n, algorithm=algorithm, sim=dict(TINY_SIM))


@pytest.fixture
def runner(tmp_path):
    return ExperimentRunner(tmp_path / "cache")


class TestCache:
    def test_miss_then_hit(self, runner):
        spec = tiny_spec()
        first = runner.run(spec)
        assert not first.from_cache
        assert runner.cache_path(spec).is_file()
        second = runner.run(spec)
        assert second.from_cache
        assert second.summary == first.summary
        assert second.meta == first.meta
        assert [s.time for s in second.trace] == [s.time for s in first.trace]
        assert runner.stats.executed == 1
        assert runner.stats.cached == 1

    def test_cache_file_is_keyed_by_content_hash_and_backend(self, runner):
        spec = tiny_spec()
        runner.run(spec)
        # Reference keeps the historical name so stale pre-backend entries
        # are overwritten; other backends get a distinct, suffixed name.
        assert runner.cache_path(spec).name == f"{spec.content_hash()}.json"
        fast = spec.with_backend("fast")
        assert fast.content_hash() == spec.content_hash()
        assert runner.cache_path(fast).name == f"{spec.content_hash()}.fast.json"
        assert runner.cache_path(fast) != runner.cache_path(spec)

    def test_stale_pre_backend_entry_is_overwritten_not_orphaned(self, runner):
        spec = tiny_spec()
        legacy = runner.cache_dir / f"{spec.content_hash()}.json"
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(json.dumps({"format": 1, "spec_hash": spec.content_hash()}))
        run = runner.run(spec)
        assert not run.from_cache  # the v1 entry is a miss ...
        payload = json.loads(legacy.read_text())
        assert payload["format"] != 1  # ... and was overwritten in place
        assert payload["backend"] == "reference"

    def test_corrupt_cache_entry_is_a_miss(self, runner):
        spec = tiny_spec()
        runner.run(spec)
        runner.cache_path(spec).write_text("not json{")
        run = runner.run(spec)
        assert not run.from_cache

    def test_format_version_mismatch_is_a_miss(self, runner):
        spec = tiny_spec()
        runner.run(spec)
        payload = json.loads(runner.cache_path(spec).read_text())
        payload["format"] = -1
        runner.cache_path(spec).write_text(json.dumps(payload))
        assert not runner.run(spec).from_cache

    def test_use_cache_false_always_executes(self, tmp_path):
        runner = ExperimentRunner(tmp_path / "cache", use_cache=False)
        spec = tiny_spec()
        runner.run(spec)
        assert not runner.cache_path(spec).exists()
        assert not runner.run(spec).from_cache
        assert runner.stats.executed == 2

    def test_clear_cache_sweeps_interrupted_writes(self, runner):
        runner.run(tiny_spec())
        # Leftover from a write interrupted between tmp and os.replace.
        (runner.cache_dir / "deadbeef.tmp.12345").write_text("{}")
        assert runner.clear_cache() == 2
        assert runner.clear_cache() == 0

    def test_workers_must_be_positive(self, tmp_path):
        with pytest.raises(ExecutorError):
            ExperimentRunner(tmp_path, workers=0)


class TestSweeps:
    def grid_specs(self):
        return expand_grid(
            "line_scaling",
            {"n": [4, 5, 6, 7], "algorithm": ["AOPT", "MaxPropagation"]},
            base={"sim": dict(TINY_SIM)},
        )

    def test_expand_grid_is_the_cartesian_product(self):
        specs = self.grid_specs()
        assert len(specs) == 8
        labels = [spec.label for spec in specs]
        assert len(set(labels)) == 8
        assert labels[0] == "line_scaling/n=4/AOPT"
        assert labels[-1] == "line_scaling/n=7/MaxPropagation"

    def test_expand_grid_rejects_empty_axis(self):
        with pytest.raises(ExecutorError):
            expand_grid("line_scaling", {"n": []})

    def test_parallel_equals_serial_equals_cached(self, tmp_path):
        """The acceptance sweep: >= 8 specs, workers 1 vs 4, then cache-only."""
        specs = self.grid_specs()
        serial = ExperimentRunner(tmp_path / "serial")
        serial_runs, serial_stats = serial.run_all(specs)
        assert serial_stats.executed == 8

        parallel = ExperimentRunner(tmp_path / "parallel", workers=4)
        parallel_runs, parallel_stats = parallel.run_all(specs)
        assert parallel_stats.executed == 8
        for left, right in zip(serial_runs, parallel_runs):
            assert left.summary == right.summary

        rerun_runs, rerun_stats = parallel.run_all(specs)
        assert rerun_stats.executed == 0
        assert rerun_stats.cached == 8
        for left, right in zip(parallel_runs, rerun_runs):
            assert left.summary == right.summary

    def test_order_is_preserved_with_mixed_hits_and_misses(self, runner):
        specs = self.grid_specs()
        runner.run_all(specs[::2])  # warm every other entry
        runs, stats = runner.run_all(specs)
        assert stats.cached == 4 and stats.executed == 4
        assert [run.spec.label for run in runs] == [spec.label for spec in specs]


class TestRunPayloads:
    def test_trace_round_trip(self):
        payload = execute_spec(tiny_spec())
        trace = trace_from_payload(payload["trace"])
        assert trace_to_payload(trace) == payload["trace"]
        assert trace.final().time == pytest.approx(5.0)

    def test_insertion_meta_survives_cache(self, runner):
        spec = scenario(
            "end_to_end_insertion", n=4, insertion_time=1.0, sim=dict(TINY_SIM)
        )
        fresh = runner.run(spec)
        cached = runner.run(spec)
        assert cached.from_cache
        assert cached.meta["new_edge"] == (0, 3)
        assert cached.meta["new_edge"] == fresh.meta["new_edge"]
        assert cached.summary.skew_at_event is not None

    def test_run_graph_property_rebuilds(self, runner):
        run = runner.run(tiny_spec(n=5))
        graph = run.graph
        assert graph.node_count == 5
        assert graph.has_edge(0, 1)

    def test_summary_excludes_engine_state(self, runner):
        run = runner.run(tiny_spec())
        assert "engine" not in run.summary.to_dict()
        assert run.summary.broken_level_chains == 0


class TestTraceNoneRuns:
    """trace: none runs cache only the streaming observer report (PR 5)."""

    def test_traceless_run_has_report_but_no_trace(self, runner):
        run = runner.run(tiny_spec().with_trace("none"))
        assert run.trace is None
        assert run.report is not None
        assert run.report.sample_count == run.summary.sample_count > 0

    def test_traceless_cache_entry_is_distinct_and_round_trips(self, runner):
        spec = tiny_spec()
        traceless = spec.with_trace("none")
        assert runner.cache_path(traceless).name.endswith(".notrace.json")
        assert runner.cache_path(traceless) != runner.cache_path(spec)
        first = runner.run(traceless)
        second = runner.run(traceless)
        assert second.from_cache
        assert second.summary == first.summary
        assert second.report == first.report
        assert second.trace is None

    def test_traceless_summary_equals_full_trace_summary(self, runner):
        spec = tiny_spec()
        full = runner.run(spec)
        none = runner.run(spec.with_trace("none"))
        assert none.summary == full.summary
        assert none.report == full.report

    def test_full_run_also_carries_the_report(self, runner):
        run = runner.run(tiny_spec())
        assert run.report is not None
        assert "global_skew" in run.report

    def test_custom_observer_selection_is_cached_separately(self, runner):
        spec = tiny_spec()
        custom = spec.with_observers("global_skew", "mode_counts")
        # Same scenario identity (same seeds) -- but a distinct cache entry,
        # because the cached payload contains different observer results.
        assert custom.content_hash() == spec.content_hash()
        assert ".obs-" in runner.cache_path(custom).name
        assert runner.cache_path(custom) != runner.cache_path(spec)
        run = runner.run(custom)
        assert set(run.report.payloads) == {"global_skew", "mode_counts"}
        # Fields backed by unselected observers read "not measured", never
        # a fabricated measurement.
        assert run.summary.gradient_violations is None
        assert run.summary.max_local_skew is None
        assert run.summary.max_global_skew is not None

    def test_spec_trace_fields_survive_serialisation(self):
        spec = tiny_spec().with_trace("none").with_observers("global_skew")
        from repro.experiments import ScenarioSpec

        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored.trace == "none"
        assert restored.observers == ("global_skew",)
        assert restored.content_hash() == spec.content_hash()


def _store_hammer(cache_dir, spec_payload, iterations):
    """Cross-process stress worker: repeatedly rewrite one cache entry."""
    from repro.experiments import ExperimentRunner, ScenarioSpec

    runner = ExperimentRunner(cache_dir)
    spec = ScenarioSpec.from_dict(spec_payload)
    payload = runner.load_cached(spec)
    for _ in range(iterations):
        runner.store(spec, payload)


class TestCacheConcurrency:
    """Satellite coverage: the cache must survive concurrent writers --
    threads sharing one daemon process and independent processes sharing
    one directory -- without torn or corrupt JSON."""

    def test_tmp_names_are_unique_per_write_and_sweepable(self, runner):
        from repro.experiments import ResultCache

        cache = ResultCache(runner.cache_dir)
        spec = tiny_spec()
        path = cache.path_for(spec)
        names = {cache._tmp_path(path).name for _ in range(50)}
        # A pid-only suffix gave every write in one process the SAME temp
        # file; per-write tokens are what make two daemon threads storing
        # the same spec safe.
        assert len(names) == 50
        import fnmatch

        assert all(fnmatch.fnmatch(name, "*.tmp.*") for name in names)

    def test_threaded_same_spec_stores_never_tear(self, runner):
        import threading

        spec = tiny_spec()
        run = runner.run(spec)
        payload = runner.load_cached(spec)
        errors = []

        def hammer():
            try:
                for _ in range(30):
                    runner.store(spec, payload)
            except OSError as exc:  # the pre-fix failure mode
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # The entry is intact and still a cache hit.
        assert runner.load_cached(spec) == payload
        # No leaked temp files.
        assert list(runner.cache_dir.glob("*.tmp.*")) == []

    def test_cross_process_runners_sharing_a_cache_dir(self, runner):
        import multiprocessing

        spec = tiny_spec()
        runner.run(spec)  # seed the entry so workers have a payload
        path = runner.cache_path(spec)
        ctx = multiprocessing.get_context("spawn")
        workers = [
            ctx.Process(
                target=_store_hammer,
                args=(str(runner.cache_dir), spec.to_dict(), 25),
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        # Read concurrently with both writers: every observation must be
        # complete, valid JSON (os.replace is atomic) -- never a torn file.
        deadline_reads = 0
        while any(worker.is_alive() for worker in workers) or deadline_reads < 5:
            text = path.read_text()
            parsed = json.loads(text)  # raises on torn/corrupt JSON
            assert parsed["spec_hash"] == spec.content_hash()
            if not any(worker.is_alive() for worker in workers):
                deadline_reads += 1
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        assert runner.load_cached(spec) is not None
        assert list(runner.cache_dir.glob("*.tmp.*")) == []
