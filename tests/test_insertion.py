"""Tests for repro.core.insertion."""

import math

import pytest

from repro.core import insertion
from repro.core.parameters import ParameterError, Parameters
from repro.network.edge import EdgeParams


@pytest.fixture
def edge():
    return EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)


class TestHandshakeTiming:
    def test_leader_wait_formula(self, params, edge):
        expected = (
            (1 + params.rho) * (1 + params.mu) * (edge.delay + edge.tau) / (1 - params.rho)
            + edge.tau
        )
        assert insertion.leader_wait(params, edge) == pytest.approx(expected)

    def test_leader_wait_exceeds_follower_wait(self, params, edge):
        # The follower window [T + tau, Delta - tau] must be non-empty.
        assert insertion.leader_wait(params, edge) - edge.tau >= insertion.follower_wait(
            params, edge
        )

    def test_follower_wait(self, params, edge):
        assert insertion.follower_wait(params, edge) == pytest.approx(2.5)

    def test_insertion_anchor(self, params, edge):
        anchor = insertion.insertion_anchor(100.0, 50.0, params, edge)
        assert anchor == pytest.approx(100.0 + 50.0 + (1 + params.rho) * (1 + params.mu) * 2.0)

    def test_insertion_anchor_validation(self, params, edge):
        with pytest.raises(ParameterError):
            insertion.insertion_anchor(-1.0, 50.0, params, edge)
        with pytest.raises(ParameterError):
            insertion.insertion_anchor(10.0, 0.0, params, edge)


class TestInsertionTimes:
    def test_anchor_is_multiple_of_duration(self):
        schedule = insertion.compute_insertion_times(
            95.0, 40.0, 4, neighbor=1, global_skew_estimate=20.0
        )
        assert schedule.anchor == pytest.approx(120.0)
        assert schedule.anchor % 40.0 == pytest.approx(0.0)

    def test_anchor_not_below_logical_anchor(self):
        schedule = insertion.compute_insertion_times(
            80.0, 40.0, 4, neighbor=1, global_skew_estimate=20.0
        )
        assert schedule.anchor >= 80.0

    def test_anchor_exact_multiple_stays(self):
        schedule = insertion.compute_insertion_times(
            80.0, 40.0, 2, neighbor=1, global_skew_estimate=20.0
        )
        assert schedule.anchor == pytest.approx(80.0)

    def test_level_times_follow_listing_2(self):
        duration = 64.0
        schedule = insertion.compute_insertion_times(
            0.0, duration, 5, neighbor=1, global_skew_estimate=20.0
        )
        for s in range(1, 6):
            expected = schedule.anchor + (1 - 2.0 ** (-(s - 1))) * duration
            assert schedule.time_for_level(s) == pytest.approx(expected)

    def test_level_times_increasing_and_converging(self):
        schedule = insertion.compute_insertion_times(
            10.0, 64.0, 8, neighbor=1, global_skew_estimate=20.0
        )
        times = schedule.level_times
        assert all(times[i] < times[i + 1] for i in range(len(times) - 1))
        assert times[-1] < schedule.final_time

    def test_due_levels_progression(self):
        schedule = insertion.compute_insertion_times(
            0.0, 64.0, 3, neighbor=1, global_skew_estimate=20.0
        )
        assert schedule.due_levels(schedule.anchor - 1.0) == []
        assert schedule.due_levels(schedule.anchor) == [1]
        assert schedule.due_levels(schedule.anchor + 32.0) == [2]
        assert schedule.due_levels(schedule.final_time) == [3]
        assert schedule.is_complete()

    def test_due_levels_can_fire_in_batch(self):
        schedule = insertion.compute_insertion_times(
            0.0, 64.0, 3, neighbor=1, global_skew_estimate=20.0
        )
        assert schedule.due_levels(schedule.final_time) == [1, 2, 3]

    def test_time_for_level_bounds(self):
        schedule = insertion.compute_insertion_times(
            0.0, 64.0, 3, neighbor=1, global_skew_estimate=20.0
        )
        with pytest.raises(ParameterError):
            schedule.time_for_level(0)
        with pytest.raises(ParameterError):
            schedule.time_for_level(4)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            insertion.compute_insertion_times(-1.0, 64.0, 3, neighbor=1, global_skew_estimate=20.0)
        with pytest.raises(ParameterError):
            insertion.compute_insertion_times(0.0, 0.0, 3, neighbor=1, global_skew_estimate=20.0)
        with pytest.raises(ParameterError):
            insertion.compute_insertion_times(0.0, 64.0, 0, neighbor=1, global_skew_estimate=20.0)


class TestDurations:
    def test_static_duration_delegates_to_equation_10(self, params):
        assert insertion.static_insertion_duration(params, 30.0) == pytest.approx(
            params.insertion_duration(30.0)
        )

    def test_dynamic_duration_delegates_to_equation_11(self, tight_params, edge):
        assert insertion.dynamic_insertion_duration(tight_params, 30.0, edge) == pytest.approx(
            tight_params.insertion_duration_dynamic(30.0, edge.delay, edge.tau)
        )

    def test_paper_duration_functions(self, params, tight_params, edge):
        static = insertion.paper_static_duration()
        dynamic = insertion.paper_dynamic_duration()
        assert static(params, 30.0, edge) == pytest.approx(params.insertion_duration(30.0))
        assert dynamic(tight_params, 30.0, edge) == pytest.approx(
            tight_params.insertion_duration_dynamic(30.0, edge.delay, edge.tau)
        )

    def test_scaled_duration(self, params, edge):
        scaled = insertion.scaled_insertion_duration(0.1)
        assert scaled(params, 30.0, edge) == pytest.approx(0.1 * params.insertion_duration(30.0))

    def test_scaled_duration_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            insertion.scaled_insertion_duration(0.0)

    def test_insertion_time_separation_lemma_7_1(self):
        value = insertion.insertion_time_separation(128.0, 2, 256.0, 3)
        assert value == pytest.approx(128.0 / (2 ** 7))

    def test_insertion_time_separation_validation(self):
        with pytest.raises(ParameterError):
            insertion.insertion_time_separation(0.0, 2, 256.0, 3)
        with pytest.raises(ParameterError):
            insertion.insertion_time_separation(128.0, 0, 256.0, 3)


class TestLemma71Separation:
    def test_distinct_levels_are_separated(self):
        """Insertion times of distinct levels respect the Lemma 7.1 spacing."""
        duration = 2.0 ** 9
        schedule_a = insertion.compute_insertion_times(
            0.0, duration, 6, neighbor=1, global_skew_estimate=20.0
        )
        schedule_b = insertion.compute_insertion_times(
            300.0, duration, 6, neighbor=2, global_skew_estimate=20.0
        )
        for s_a in range(1, 7):
            for s_b in range(1, 7):
                t_a = schedule_a.time_for_level(s_a)
                t_b = schedule_b.time_for_level(s_b)
                if s_a == s_b:
                    continue
                separation = insertion.insertion_time_separation(duration, s_a, duration, s_b)
                assert abs(t_a - t_b) >= separation - 1e-9

    def test_same_level_same_duration_coincide_or_separated(self):
        duration = 2.0 ** 9
        schedule_a = insertion.compute_insertion_times(
            0.0, duration, 4, neighbor=1, global_skew_estimate=20.0
        )
        schedule_b = insertion.compute_insertion_times(
            100.0, duration, 4, neighbor=2, global_skew_estimate=20.0
        )
        for s in range(1, 5):
            t_a = schedule_a.time_for_level(s)
            t_b = schedule_b.time_for_level(s)
            separation = insertion.insertion_time_separation(duration, s, duration, s)
            assert abs(t_a - t_b) < 1e-9 or abs(t_a - t_b) >= separation - 1e-9
