"""Tests for repro.estimate.messages and repro.estimate.transport."""

import pytest

from repro.estimate.messages import ClockBroadcast, Envelope, InsertEdgeMessage
from repro.estimate.transport import Transport, TransportError
from repro.network import topology
from repro.sim.delay import FixedFractionDelay, ZeroDelay


class TestMessages:
    def test_clock_broadcast_fields(self):
        broadcast = ClockBroadcast(sender=1, logical=10.0, max_estimate=12.0, hardware=9.5)
        assert broadcast.sender == 1
        assert broadcast.max_estimate == 12.0

    def test_clock_broadcast_rejects_negative(self):
        with pytest.raises(ValueError):
            ClockBroadcast(sender=1, logical=-1.0, max_estimate=0.0)

    def test_insert_edge_message_fields(self):
        message = InsertEdgeMessage(edge=(0, 1), insertion_anchor=50.0, global_skew_estimate=20.0)
        assert message.edge == (0, 1)

    def test_insert_edge_message_validation(self):
        with pytest.raises(ValueError):
            InsertEdgeMessage(edge=(1, 1), insertion_anchor=50.0, global_skew_estimate=20.0)
        with pytest.raises(ValueError):
            InsertEdgeMessage(edge=(0, 1), insertion_anchor=50.0, global_skew_estimate=0.0)

    def test_envelope_transit_time(self):
        envelope = Envelope(sender=0, receiver=1, payload="x", send_time=1.0, delivery_time=2.5)
        assert envelope.transit_time == pytest.approx(1.5)

    def test_envelope_rejects_time_travel(self):
        with pytest.raises(ValueError):
            Envelope(sender=0, receiver=1, payload="x", send_time=2.0, delivery_time=1.0)

    def test_envelope_ids_unique(self):
        a = Envelope(sender=0, receiver=1, payload="x", send_time=0.0, delivery_time=0.0)
        b = Envelope(sender=0, receiver=1, payload="x", send_time=0.0, delivery_time=0.0)
        assert a.message_id != b.message_id


class TestTransport:
    @pytest.fixture
    def graph(self):
        return topology.line(3)

    def test_send_and_deliver(self, graph):
        transport = Transport(graph, ZeroDelay())
        transport.send(0, 1, "hello", t=1.0)
        due = transport.deliveries_due(1.0)
        assert len(due) == 1
        assert due[0].payload == "hello"
        assert transport.delivered_count == 1

    def test_delay_respects_bound(self, graph):
        transport = Transport(graph, FixedFractionDelay(1.0))
        envelope = transport.send(0, 1, "x", t=0.0)
        bound = graph.edge_params(0, 1).delay
        assert envelope.delivery_time == pytest.approx(bound)
        assert transport.deliveries_due(bound / 2) == []
        assert len(transport.deliveries_due(bound)) == 1

    def test_send_requires_edge(self, graph):
        transport = Transport(graph)
        with pytest.raises(TransportError):
            transport.send(0, 2, "x", t=0.0)

    def test_try_send_returns_none_without_edge(self, graph):
        transport = Transport(graph)
        assert transport.try_send(0, 2, "x", t=0.0) is None
        assert transport.try_send(0, 1, "x", t=0.0) is not None

    def test_unknown_node_rejected(self, graph):
        transport = Transport(graph)
        with pytest.raises(TransportError):
            transport.send(0, 99, "x", t=0.0)

    def test_deliveries_sorted_by_time(self, graph):
        transport = Transport(graph, ZeroDelay())
        transport.send(0, 1, "first", t=0.0)
        transport.send(1, 2, "second", t=0.0)
        due = transport.deliveries_due(0.0)
        assert [env.payload for env in due] == ["first", "second"]

    def test_drop_on_edge_loss(self, graph):
        transport = Transport(graph, FixedFractionDelay(1.0), drop_on_edge_loss=True)
        transport.send(0, 1, "x", t=0.0)
        graph.remove_directed_edge(1, 0)
        assert transport.deliveries_due(10.0) == []
        assert transport.dropped_count == 1

    def test_keep_on_edge_loss_by_default(self, graph):
        transport = Transport(graph, FixedFractionDelay(1.0))
        transport.send(0, 1, "x", t=0.0)
        graph.remove_directed_edge(1, 0)
        assert len(transport.deliveries_due(10.0)) == 1

    def test_drop_all(self, graph):
        transport = Transport(graph, FixedFractionDelay(1.0))
        transport.send(0, 1, "x", t=0.0)
        transport.send(1, 0, "y", t=0.0)
        assert transport.drop_all() == 2
        assert transport.pending_count() == 0

    def test_counters(self, graph):
        transport = Transport(graph, ZeroDelay())
        transport.send(0, 1, "x", t=0.0)
        transport.send(1, 2, "y", t=0.0)
        transport.deliveries_due(0.0)
        assert transport.sent_count == 2
        assert transport.delivered_count == 2
        assert transport.dropped_count == 0

    def test_heap_order_matches_scan_order(self):
        """Regression: the heap delivery order is (delivery_time, message_id).

        The transport used to scan and sort the whole in-flight list every
        call; the heap must pop in exactly that order -- including ties on
        delivery time, which fall back to send order via the message id --
        under interleaved sends, partial drains and messages whose delays
        make them overtake earlier sends.
        """
        import random

        from repro.sim.delay import UniformRandomDelay

        graph = topology.line(6)
        transport = Transport(graph, UniformRandomDelay(0.0, 1.0, seed=20260808))
        rng = random.Random(99)
        edges = [(u, v) for u in graph.nodes for v in graph.neighbors(u)]
        expected: list = []  # mirror of the old scan: (delivery_time, id, payload)
        delivered = []
        payload = 0
        t = 0.0
        for _ in range(40):
            for _ in range(rng.randrange(0, 6)):
                u, v = rng.choice(edges)
                envelope = transport.send(u, v, payload, t=t)
                expected.append(
                    (envelope.delivery_time, envelope.message_id, payload)
                )
                payload += 1
            due = transport.deliveries_due(t)
            delivered.extend(env.payload for env in due)
            t += 0.25
        delivered.extend(env.payload for env in transport.deliveries_due(1e9))
        expected.sort()
        assert delivered == [item[2] for item in expected]
        assert transport.pending_count() == 0

    def test_tied_delivery_times_pop_in_send_order(self, graph):
        transport = Transport(graph, ZeroDelay())
        for payload in range(5):
            transport.send(0, 1, payload, t=0.0)
        due = transport.deliveries_due(0.0)
        assert [env.payload for env in due] == [0, 1, 2, 3, 4]
