"""Tests for repro.estimate.messages and repro.estimate.transport."""

import pytest

from repro.estimate.messages import ClockBroadcast, Envelope, InsertEdgeMessage
from repro.estimate.transport import Transport, TransportError
from repro.network import topology
from repro.sim.delay import FixedFractionDelay, ZeroDelay


class TestMessages:
    def test_clock_broadcast_fields(self):
        broadcast = ClockBroadcast(sender=1, logical=10.0, max_estimate=12.0, hardware=9.5)
        assert broadcast.sender == 1
        assert broadcast.max_estimate == 12.0

    def test_clock_broadcast_rejects_negative(self):
        with pytest.raises(ValueError):
            ClockBroadcast(sender=1, logical=-1.0, max_estimate=0.0)

    def test_insert_edge_message_fields(self):
        message = InsertEdgeMessage(edge=(0, 1), insertion_anchor=50.0, global_skew_estimate=20.0)
        assert message.edge == (0, 1)

    def test_insert_edge_message_validation(self):
        with pytest.raises(ValueError):
            InsertEdgeMessage(edge=(1, 1), insertion_anchor=50.0, global_skew_estimate=20.0)
        with pytest.raises(ValueError):
            InsertEdgeMessage(edge=(0, 1), insertion_anchor=50.0, global_skew_estimate=0.0)

    def test_envelope_transit_time(self):
        envelope = Envelope(sender=0, receiver=1, payload="x", send_time=1.0, delivery_time=2.5)
        assert envelope.transit_time == pytest.approx(1.5)

    def test_envelope_rejects_time_travel(self):
        with pytest.raises(ValueError):
            Envelope(sender=0, receiver=1, payload="x", send_time=2.0, delivery_time=1.0)

    def test_envelope_ids_unique(self):
        a = Envelope(sender=0, receiver=1, payload="x", send_time=0.0, delivery_time=0.0)
        b = Envelope(sender=0, receiver=1, payload="x", send_time=0.0, delivery_time=0.0)
        assert a.message_id != b.message_id


class TestTransport:
    @pytest.fixture
    def graph(self):
        return topology.line(3)

    def test_send_and_deliver(self, graph):
        transport = Transport(graph, ZeroDelay())
        transport.send(0, 1, "hello", t=1.0)
        due = transport.deliveries_due(1.0)
        assert len(due) == 1
        assert due[0].payload == "hello"
        assert transport.delivered_count == 1

    def test_delay_respects_bound(self, graph):
        transport = Transport(graph, FixedFractionDelay(1.0))
        envelope = transport.send(0, 1, "x", t=0.0)
        bound = graph.edge_params(0, 1).delay
        assert envelope.delivery_time == pytest.approx(bound)
        assert transport.deliveries_due(bound / 2) == []
        assert len(transport.deliveries_due(bound)) == 1

    def test_send_requires_edge(self, graph):
        transport = Transport(graph)
        with pytest.raises(TransportError):
            transport.send(0, 2, "x", t=0.0)

    def test_try_send_returns_none_without_edge(self, graph):
        transport = Transport(graph)
        assert transport.try_send(0, 2, "x", t=0.0) is None
        assert transport.try_send(0, 1, "x", t=0.0) is not None

    def test_unknown_node_rejected(self, graph):
        transport = Transport(graph)
        with pytest.raises(TransportError):
            transport.send(0, 99, "x", t=0.0)

    def test_deliveries_sorted_by_time(self, graph):
        transport = Transport(graph, ZeroDelay())
        transport.send(0, 1, "first", t=0.0)
        transport.send(1, 2, "second", t=0.0)
        due = transport.deliveries_due(0.0)
        assert [env.payload for env in due] == ["first", "second"]

    def test_drop_on_edge_loss(self, graph):
        transport = Transport(graph, FixedFractionDelay(1.0), drop_on_edge_loss=True)
        transport.send(0, 1, "x", t=0.0)
        graph.remove_directed_edge(1, 0)
        assert transport.deliveries_due(10.0) == []
        assert transport.dropped_count == 1

    def test_keep_on_edge_loss_by_default(self, graph):
        transport = Transport(graph, FixedFractionDelay(1.0))
        transport.send(0, 1, "x", t=0.0)
        graph.remove_directed_edge(1, 0)
        assert len(transport.deliveries_due(10.0)) == 1

    def test_drop_all(self, graph):
        transport = Transport(graph, FixedFractionDelay(1.0))
        transport.send(0, 1, "x", t=0.0)
        transport.send(1, 0, "y", t=0.0)
        assert transport.drop_all() == 2
        assert transport.pending_count() == 0

    def test_counters(self, graph):
        transport = Transport(graph, ZeroDelay())
        transport.send(0, 1, "x", t=0.0)
        transport.send(1, 2, "y", t=0.0)
        transport.deliveries_due(0.0)
        assert transport.sent_count == 2
        assert transport.delivered_count == 2
        assert transport.dropped_count == 0
