"""Tests for repro.sim.delay."""

import pytest

from repro.sim.delay import (
    CallableDelay,
    DelayError,
    DirectionalDelay,
    FixedFractionDelay,
    UniformRandomDelay,
    ZeroDelay,
)


class TestBasicModels:
    def test_zero_delay(self):
        assert ZeroDelay().delay(0, 1, 0.0, 5.0) == 0.0

    def test_fixed_fraction(self):
        assert FixedFractionDelay(0.5).delay(0, 1, 0.0, 4.0) == 2.0
        assert FixedFractionDelay(1.0).delay(0, 1, 0.0, 4.0) == 4.0

    def test_fixed_fraction_out_of_range(self):
        with pytest.raises(DelayError):
            FixedFractionDelay(1.5)

    def test_uniform_random_within_bounds(self):
        model = UniformRandomDelay(0.25, 0.75, seed=1)
        for _ in range(50):
            delay = model.delay(0, 1, 0.0, 8.0)
            assert 2.0 <= delay <= 6.0

    def test_uniform_random_deterministic(self):
        a = UniformRandomDelay(seed=3)
        b = UniformRandomDelay(seed=3)
        assert [a.delay(0, 1, 0.0, 1.0) for _ in range(5)] == [
            b.delay(0, 1, 0.0, 1.0) for _ in range(5)
        ]

    def test_uniform_random_bad_fractions(self):
        with pytest.raises(DelayError):
            UniformRandomDelay(0.8, 0.2)


class TestDirectionalDelay:
    def test_slow_towards_higher(self):
        model = DirectionalDelay(slow_towards_higher=True)
        assert model.delay(0, 5, 0.0, 3.0) == 3.0
        assert model.delay(5, 0, 0.0, 3.0) == 0.0

    def test_slow_towards_lower(self):
        model = DirectionalDelay(slow_towards_higher=False)
        assert model.delay(0, 5, 0.0, 3.0) == 0.0
        assert model.delay(5, 0, 0.0, 3.0) == 3.0


class TestCallableDelay:
    def test_wraps_function(self):
        model = CallableDelay(lambda s, r, t, bound: bound / 4.0)
        assert model.delay(0, 1, 0.0, 8.0) == 2.0

    def test_rejects_out_of_range_result(self):
        model = CallableDelay(lambda s, r, t, bound: bound * 2.0)
        with pytest.raises(DelayError):
            model.delay(0, 1, 0.0, 8.0)

    def test_rejects_non_callable(self):
        with pytest.raises(DelayError):
            CallableDelay("not callable")
