"""Differential suite: streaming observers vs the pre-refactor trace path.

``legacy_summary_fields`` below is a *verbatim copy* of the trace-walking
computation that ``repro.experiments.results.summarize`` (and the analysis
helpers it called) performed before the streaming-metrics refactor: per-node
dict samples, post-hoc window selection, the original float expressions.

Every named scenario is executed on every backend through the streaming
pipeline (the normal executor path) and its ``RunSummary`` fields are
compared **exactly** -- not approximately -- against the legacy computation
over the full cached trace.  A second pass asserts that ``trace: none`` runs
(no trace at all, observers only) produce bit-identical summaries and
observer reports, and that the opt-in observers agree across backends.
"""

import random

import pytest

from conftest import EQUIVALENCE_SCENARIO_OVERRIDES, make_fuzz_spec
from repro.analysis import skew as skew_analysis
from repro.experiments import execute_spec, registry, scenario
from repro.experiments.results import trace_from_payload
from repro.fastsim.backend import backend_available
from repro.network import paths
from repro.sim.runner import minimum_kappa

BACKENDS = ["reference", "fast"] + (["vec"] if backend_available("vec") else [])


# ----------------------------------------------------------------------
# The pre-refactor computation, preserved verbatim for the differential
# ----------------------------------------------------------------------
def _legacy_global_skew(sample):
    values = list(sample.logical.values())
    if not values:
        return 0.0
    return max(values) - min(values)


def _legacy_max_global_skew(trace, start=0.0):
    best = 0.0
    for sample in trace:
        if sample.time >= start:
            best = max(best, _legacy_global_skew(sample))
    return best


def _legacy_local_skew(sample, edges):
    best = 0.0
    for u, v in edges:
        best = max(best, abs(sample.logical[u] - sample.logical[v]))
    return best


def _legacy_max_local_skew(trace, edges, start=0.0):
    edge_list = list(edges)
    best = 0.0
    for sample in trace:
        if sample.time >= start:
            best = max(best, _legacy_local_skew(sample, edge_list))
    return best


def _legacy_steady_state_window(trace, fraction):
    start_time = trace.first().time
    end_time = trace.final().time
    return (end_time - fraction * (end_time - start_time), end_time)


def _legacy_convergence_time(trace, bound, start=0.0):
    candidate = None
    for sample in trace:
        if sample.time < start:
            continue
        if _legacy_global_skew(sample) <= bound:
            if candidate is None:
                candidate = sample.time
        else:
            candidate = None
    return candidate


def _legacy_stabilization_time(trace, u, v, bound, event_time):
    samples = [s for s in trace if s.time >= event_time]
    assert samples, "the trace has no samples after the event time"
    max_skew = max(s.skew(u, v) for s in samples)
    final_skew = samples[-1].skew(u, v)
    candidate = None
    for sample in samples:
        s = sample.skew(u, v)
        if s <= bound:
            if candidate is None:
                candidate = sample.time
        else:
            candidate = None
    if candidate is None:
        return (False, None, max_skew, final_skew)
    return (True, candidate - event_time, max_skew, final_skew)


def _legacy_gradient_violation_count(trace, graph, bound, params, tolerance=1e-9):
    weight = paths.kappa_weight(graph, params)
    distances = paths.all_pairs_distances(graph, weight)
    count = 0
    for sample in trace:
        for (u, v), distance in distances.items():
            if u >= v or distance <= 0.0:
                continue
            measured = abs(sample.logical[u] - sample.logical[v])
            if measured > params.gradient_skew_bound(distance, bound) + tolerance:
                count += 1
    return count


def _legacy_mode_counts(trace):
    counts = {}
    for sample in trace:
        for mode in sample.modes.values():
            counts[mode] = counts.get(mode, 0) + 1
    return counts


def legacy_summary_fields(spec, trace, scenario_obj):
    """Every trace-derived RunSummary field, computed the pre-refactor way."""
    graph = scenario_obj.graph
    base_edges = scenario_obj.base_edges
    config = scenario_obj.config
    meta = scenario_obj.meta
    bound = scenario_obj.global_skew_bound

    initial = _legacy_global_skew(trace.first()) if len(trace) else 0.0
    final = _legacy_global_skew(trace.final()) if len(trace) else 0.0
    halving_time = None
    if initial > 0.0:
        halving_time = _legacy_convergence_time(trace, initial / 2.0)
    steady_start = 0.0
    if len(trace):
        steady_start, _ = _legacy_steady_state_window(trace, 0.25)

    gradient_violations = None
    if spec.dynamics is None and bound is not None and len(trace):
        gradient_violations = _legacy_gradient_violation_count(
            trace, graph, bound, config.params
        )

    event_time = meta.get("insertion_time")
    skew_at_event = stabilized = stabilization_time = post_event = None
    if event_time is not None and "new_edge" in meta and len(trace):
        u, v = meta["new_edge"]
        criterion = 2.0 * minimum_kappa(graph, config.params)
        stabilized, stabilization_time, _, _ = _legacy_stabilization_time(
            trace, u, v, criterion, event_time
        )
        skew_at_event = trace.sample_at(event_time).skew(u, v)
        post_event = _legacy_max_local_skew(trace, base_edges, start=event_time)

    return {
        "sample_count": len(trace),
        "initial_global_skew": initial,
        "max_global_skew": _legacy_max_global_skew(trace),
        "final_global_skew": final,
        "halving_time": halving_time,
        "max_local_skew": _legacy_max_local_skew(trace, base_edges),
        "steady_global_skew": _legacy_max_global_skew(trace, start=steady_start),
        "steady_local_skew": _legacy_max_local_skew(
            trace, base_edges, start=steady_start
        ),
        "gradient_violations": gradient_violations,
        "event_time": event_time,
        "skew_at_event": skew_at_event,
        "stabilized": stabilized,
        "stabilization_time": stabilization_time,
        "post_event_local_skew": post_event,
        "mode_counts": _legacy_mode_counts(trace),
    }


def assert_streaming_matches_legacy(spec):
    """Streaming summary fields == legacy trace-derived fields, exactly."""
    payload = execute_spec(spec)
    trace = trace_from_payload(payload["trace"])
    scenario_obj = registry.build_scenario(spec)
    expected = legacy_summary_fields(spec, trace, scenario_obj)
    summary = payload["summary"]
    for field, value in expected.items():
        assert summary[field] == value, (
            f"{spec.label or spec.topology.name} [{spec.backend}]: "
            f"streaming {field}={summary[field]!r} != legacy {value!r}"
        )
    return payload


# ----------------------------------------------------------------------
# Named scenarios x backends
# ----------------------------------------------------------------------
class TestStreamingMatchesLegacy:
    def test_every_named_scenario_is_covered(self):
        from conftest import builtin_scenario_names

        assert sorted(EQUIVALENCE_SCENARIO_OVERRIDES) == builtin_scenario_names()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_SCENARIO_OVERRIDES))
    def test_streaming_equals_trace_derived(self, name, backend):
        spec = scenario(
            name, backend=backend, **EQUIVALENCE_SCENARIO_OVERRIDES[name]
        )
        payload = assert_streaming_matches_legacy(spec)
        assert payload["summary"]["sample_count"] > 5

    @pytest.mark.parametrize("case", range(3))
    def test_fuzz_specs_match_legacy(self, case):
        rng = random.Random(9180000 + case)
        spec = make_fuzz_spec(rng, case, "metrics_fuzz")
        assert_streaming_matches_legacy(spec)


# ----------------------------------------------------------------------
# trace: none must change nothing but the trace
# ----------------------------------------------------------------------
class TestTraceNoneEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(EQUIVALENCE_SCENARIO_OVERRIDES))
    def test_traceless_summary_is_bit_identical(self, name, backend):
        spec = scenario(
            name, backend=backend, **EQUIVALENCE_SCENARIO_OVERRIDES[name]
        )
        full = execute_spec(spec)
        none = execute_spec(spec.with_trace("none"))
        assert none["trace"] is None
        assert full["trace"] is not None
        assert none["summary"] == full["summary"]
        assert none["observers"] == full["observers"]
        assert none["meta"] == full["meta"]


# ----------------------------------------------------------------------
# Opt-in observers agree across backends
# ----------------------------------------------------------------------
ALL_OBSERVERS = (
    "global_skew",
    "local_skew",
    "convergence_time",
    "mode_counts",
    "stabilization_window",
    "gradient_bound_check",
    "skew_by_distance",
    "max_estimate_lag",
    "edge_skew_histogram",
)


class TestOptInObservers:
    def test_all_observers_agree_across_backends(self):
        base = scenario(
            "line_scaling", **EQUIVALENCE_SCENARIO_OVERRIDES["line_scaling"]
        ).with_observers(*ALL_OBSERVERS)
        payloads = {
            backend: execute_spec(base.with_backend(backend))
            for backend in BACKENDS
        }
        reference = payloads["reference"]["observers"]
        for backend, payload in payloads.items():
            assert payload["observers"] == reference, backend

    def test_skew_by_distance_matches_analysis_helper(self):
        base = scenario(
            "ring_sinusoidal_drift",
            **EQUIVALENCE_SCENARIO_OVERRIDES["ring_sinusoidal_drift"],
        ).with_observers("skew_by_distance")
        payload = execute_spec(base)
        trace = trace_from_payload(payload["trace"])
        scenario_obj = registry.build_scenario(base)
        weight = paths.kappa_weight(scenario_obj.graph, scenario_obj.config.params)
        expected = skew_analysis.max_skew_by_distance(
            trace, scenario_obj.graph, weight=weight
        )
        observed = payload["observers"]["observers"]["skew_by_distance"]
        assert observed["distances"] == [round(d, 9) for d in expected]
        assert observed["max_skew"] == list(expected.values())

    def test_observation_details_never_change_content_hash(self):
        """Observers, trace mode and backend are all observation/execution
        details: same scenario identity, same seeds, comparable results."""
        base = scenario("quickstart_line", n=4)
        assert base.content_hash() == base.with_observers("global_skew").content_hash()
        assert base.content_hash() == base.with_trace("none").content_hash()
        assert base.content_hash() == base.with_backend("fast").content_hash()

    def test_custom_observer_run_simulates_the_identical_scenario(self):
        """A custom observer selection must not perturb the simulation."""
        base = scenario(
            "line_scaling", **EQUIVALENCE_SCENARIO_OVERRIDES["line_scaling"]
        )
        default = execute_spec(base)
        custom = execute_spec(base.with_observers("global_skew", "mode_counts"))
        assert custom["trace"] == default["trace"]
        payloads = custom["observers"]["observers"]
        assert payloads["global_skew"] == default["observers"]["observers"]["global_skew"]
