"""Differential suite: the fast backend must match the reference engine.

Every named scenario of the registry is executed on both backends (with
shortened durations, everything else untouched) and the full cacheable
payloads -- trace, summary, metadata -- are compared for **exact** equality.
A randomized-spec fuzz case sweeps topologies, drifts, delay models and
estimate strategies; a dedicated staged-insertion case drives the full
leader/follower handshake and level promotion machinery on both engines.

The engines share every seed because the spec content hash (the seed source)
excludes the backend field; any divergence in float-operation order or random
draw order therefore shows up as a hard assertion failure here.
"""

import random

import pytest

from conftest import (
    EQUIVALENCE_SCENARIO_OVERRIDES,
    FUZZ_DELAYS,
    make_delay_sweep_spec,
    make_fuzz_spec,
)
from repro.core.neighbor_sets import FULLY_INSERTED
from repro.experiments import execute_spec, registry, scenario
from repro.experiments.spec import ComponentSpec, ScenarioSpec
from repro.fastsim import FastEngine
from repro.sim.runner import build_engine

#: The seven named scenarios with shortened runs (shared across the
#: differential suites; see tests/conftest.py).
NAMED_SCENARIO_OVERRIDES = EQUIVALENCE_SCENARIO_OVERRIDES


def run_both(spec):
    """Execute one spec on both backends; return the two payloads."""
    reference = execute_spec(spec.with_backend("reference"))
    fast = execute_spec(spec.with_backend("fast"))
    return reference, fast


def assert_equivalent(spec):
    reference, fast = run_both(spec)
    assert reference["trace"] == fast["trace"], (
        f"trace mismatch for {spec.label or spec.topology.name}"
    )
    assert reference["summary"] == fast["summary"]
    assert reference["meta"] == fast["meta"]
    return reference, fast


class TestNamedScenarioEquivalence:
    def test_every_named_scenario_is_covered(self):
        from conftest import builtin_scenario_names

        assert sorted(NAMED_SCENARIO_OVERRIDES) == builtin_scenario_names()

    @pytest.mark.parametrize("name", sorted(NAMED_SCENARIO_OVERRIDES))
    def test_backends_agree(self, name):
        spec = scenario(name, **NAMED_SCENARIO_OVERRIDES[name])
        reference, fast = assert_equivalent(spec)
        # The runs did something non-trivial.
        assert reference["summary"]["sample_count"] > 5
        assert reference["spec_hash"] == fast["spec_hash"]


class TestStagedInsertionEquivalence:
    """The full Listing 1/2 handshake: discovery, anchor, level promotions."""

    def insertion_spec(self, algorithm="aopt"):
        return ScenarioSpec(
            label=f"fastsim_insertion/{algorithm}",
            topology=ComponentSpec("line", {"n": 5}),
            dynamics=ComponentSpec(
                "end_to_end_insertion", {"insertion_time": 5.0}
            ),
            drift=ComponentSpec("two_group", {"swap_period": 20.0}),
            algorithm=ComponentSpec(
                algorithm,
                # A tiny insertion duration so every level is promoted well
                # within the run (I ~ 3 time units for this bound).
                {"global_skew_bound": 10.0, "insertion_scale": 0.001},
            ),
            params={"rho": 0.015, "mu": 0.1},
            edge={"epsilon": 1.0, "tau": 0.5, "delay": 2.0},
            sim={
                "dt": 0.1,
                "duration": 45.0,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
        )

    def test_staged_insertion_matches_and_completes(self):
        spec = self.insertion_spec()
        assert_equivalent(spec)
        # Drive the engines directly to inspect the final level state.
        materialised = registry.build_scenario(spec)
        reference = build_engine(
            materialised.graph,
            materialised.algorithm_factory,
            materialised.config,
        )
        reference.run(materialised.config.duration)
        materialised = registry.build_scenario(spec)
        fast = FastEngine(
            materialised.graph,
            materialised.algorithm_factory,
            materialised.config,
        )
        fast.run(materialised.config.duration)
        # The inserted end-to-end edge reached full insertion on both sides.
        for engine in (reference, fast):
            assert engine.algorithm(0).levels.level_of(4) == FULLY_INSERTED
            assert engine.algorithm(4).levels.level_of(0) == FULLY_INSERTED
            assert engine.algorithm(0).levels.subset_chain_holds()

    def test_immediate_insertion_variant_matches(self):
        assert_equivalent(self.insertion_spec(algorithm="immediate_insertion"))


class TestFuzzEquivalence:
    """Randomized specs over topologies x drifts x delays x strategies.

    The generators live in tests/conftest.py and are shared with the vecsim
    and streaming-metrics differential suites.
    """

    @pytest.mark.parametrize("case", range(6))
    def test_random_specs_agree(self, case):
        rng = random.Random(20260729 + case)
        spec = make_fuzz_spec(rng, case, "fastsim_fuzz")
        assert_equivalent(spec)

    @pytest.mark.parametrize("delay", FUZZ_DELAYS)
    def test_every_delay_model_agrees(self, delay):
        """Deterministic sweep over all delay models (incl. the default)."""
        assert_equivalent(make_delay_sweep_spec(delay, "fastsim_delay"))
