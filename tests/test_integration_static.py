"""Integration tests: AOPT and baselines on static networks.

These tests run short but complete simulations and verify the paper's
guarantees (rate envelope, global skew, gradient skew, max-estimate
conditions) on the recorded traces.
"""

import pytest

from repro.analysis import gradient, skew
from repro.baselines.max_algorithm import max_propagation_factory
from repro.baselines.threshold_gradient import threshold_gradient_factory
from repro.core.algorithm import aopt_factory
from repro.core.parameters import Parameters
from repro.network import paths, topology
from repro.network.edge import EdgeParams
from repro.sim.drift import RampAdversary, TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

PARAMS = Parameters(rho=0.01, mu=0.1)
EDGE = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)


def adversarial_config(graph, duration=120.0, **kwargs):
    fast, slow = half_split(graph.nodes)
    return SimulationConfig(
        params=PARAMS,
        dt=0.05,
        duration=duration,
        drift=TwoGroupAdversary(PARAMS.rho, fast, slow),
        estimate_strategy="toward_observer",
        **kwargs,
    )


@pytest.fixture(scope="module")
def line_run():
    graph = topology.line(8, EDGE)
    config = adversarial_config(graph)
    aopt_config = default_aopt_config(graph, config)
    result = run_simulation(graph, aopt_factory(aopt_config), config)
    return graph, config, aopt_config, result


class TestAOPTOnStaticLine:
    def test_rate_envelope_respected(self, line_run):
        _, config, _, result = line_run
        duration = result.trace.final().time
        for node in result.engine.nodes:
            value = result.engine.logical_value(node)
            assert value >= PARAMS.alpha * duration - 1e-6
            assert value <= PARAMS.beta * duration + 1e-6

    def test_logical_clocks_monotone(self, line_run):
        _, _, _, result = line_run
        for node in result.engine.nodes:
            series = [v for _, v in result.trace.logical_series(node)]
            assert all(a <= b + 1e-12 for a, b in zip(series, series[1:]))

    def test_global_skew_bounded_by_estimate(self, line_run):
        _, _, aopt_config, result = line_run
        assert result.trace.max_global_skew() <= aopt_config.global_skew.value(0.0)

    def test_gradient_bound_holds(self, line_run):
        graph, _, aopt_config, result = line_run
        violations = gradient.check_trace(
            result.trace, graph, aopt_config.global_skew.value(0.0), PARAMS
        )
        assert violations == []

    def test_max_estimates_never_exceed_true_max(self, line_run):
        _, _, _, result = line_run
        for sample in result.trace:
            assert skew.max_estimate_violations(sample) == 0

    def test_both_modes_exercised(self, line_run):
        _, _, _, result = line_run
        counts = result.trace.mode_counts()
        assert counts.get("fast", 0) > 0
        assert counts.get("slow", 0) > 0

    def test_local_skew_well_below_global_skew_budget(self, line_run):
        graph, _, aopt_config, result = line_run
        local = skew.max_local_skew(result.trace, skew.edges_of(graph))
        kappa = PARAMS.kappa_for(EDGE.epsilon, EDGE.tau)
        bound = PARAMS.local_skew_bound(kappa, aopt_config.global_skew.value(0.0))
        assert local <= bound


class TestAOPTOnOtherTopologies:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: topology.ring(8, EDGE),
            lambda: topology.grid(3, 3, EDGE),
            lambda: topology.binary_tree(3, EDGE),
        ],
    )
    def test_gradient_bound_holds(self, graph_builder):
        graph = graph_builder()
        config = adversarial_config(graph, duration=60.0)
        aopt_config = default_aopt_config(graph, config)
        result = run_simulation(graph, aopt_factory(aopt_config), config)
        violations = gradient.check_trace(
            result.trace, graph, aopt_config.global_skew.value(0.0), PARAMS
        )
        assert violations == []
        assert result.trace.max_global_skew() <= aopt_config.global_skew.value(0.0)


class TestBroadcastEstimateMode:
    def test_aopt_with_message_based_estimates(self):
        graph = topology.line(5, EDGE)
        fast, slow = half_split(graph.nodes)
        config = SimulationConfig(
            params=PARAMS,
            dt=0.05,
            duration=80.0,
            drift=TwoGroupAdversary(PARAMS.rho, fast, slow),
            estimate_mode="broadcast",
            broadcast_interval=0.5,
        )
        aopt_config = default_aopt_config(graph, config)
        result = run_simulation(graph, aopt_factory(aopt_config), config)
        assert result.trace.max_global_skew() <= aopt_config.global_skew.value(0.0)
        # Broadcast estimates are coarser, so only check a loose gradient bound
        # on single edges (kappa derived from the broadcast error bound).
        layer_epsilon = result.engine.estimate_layer.error_bound(0, 1)
        kappa = PARAMS.kappa_for(layer_epsilon, EDGE.tau)
        local = skew.max_local_skew(result.trace, skew.edges_of(graph))
        assert local <= PARAMS.local_skew_bound(kappa, aopt_config.global_skew.value(0.0))


class TestBaselineComparison:
    def test_aopt_beats_unsynchronized_drift(self):
        graph = topology.line(8, EDGE)
        config = adversarial_config(graph, duration=150.0)
        aopt_config = default_aopt_config(graph, config)
        result = run_simulation(graph, aopt_factory(aopt_config), config)
        uncorrected = 2 * PARAMS.rho * 150.0
        assert result.trace.final().global_skew() < uncorrected

    def test_threshold_baseline_runs_and_stays_bounded(self):
        graph = topology.line(8, EDGE)
        config = adversarial_config(graph, duration=100.0)
        kappa = PARAMS.kappa_for(EDGE.epsilon, EDGE.tau)
        result = run_simulation(
            graph, threshold_gradient_factory(PARAMS, kappa), config
        )
        assert result.trace.max_global_skew() < 50.0

    def test_max_propagation_keeps_global_skew_small(self):
        graph = topology.line(8, EDGE)
        config = adversarial_config(graph, duration=100.0)
        result = run_simulation(graph, max_propagation_factory(PARAMS.rho), config)
        assert result.trace.final().global_skew() < 2 * PARAMS.rho * 100.0
