"""Differential suite for broadcast (message-layer) estimate mode.

The columnar message transport of the fast/vec backends must reproduce the
reference engine's broadcast estimate layer *bit-identically*: stored
broadcast values, per-observer extrapolation, edge-loss forgetting and the
``(delivery_time, message_id)`` delivery order.  Every assertion here is
exact payload equality (traces, summaries, metadata) -- no tolerances.

Covers the named broadcast scenarios, randomized fuzz specs, every delay
model (including the chaos storm wrapper), lossy transport across a
partition, and the batched vec execution path.
"""

import random

import pytest

from conftest import FUZZ_DELAYS, make_fuzz_spec
from repro.experiments import execute_spec, execute_specs_batched, scenario
from repro.experiments.spec import ComponentSpec, ScenarioSpec
from repro.fastsim.backend import backend_available

pytest.importorskip("numpy")

#: Named broadcast scenarios with shortened runs (storm windows, the
#: partition + heal and plenty of broadcast rounds all still happen).
BROADCAST_SCENARIO_OVERRIDES = {
    "line_broadcast": {"n": 6, "sim": {"duration": 30.0}},
    "random_broadcast_delay_storm": {"n": 8, "duration": 60.0},
    "grid_broadcast_partition": {
        "rows": 3,
        "cols": 3,
        "split_time": 10.0,
        "heal_time": 25.0,
        "duration": 50.0,
    },
}


def assert_equivalent(spec, backend):
    reference = execute_spec(spec.with_backend("reference"))
    other = execute_spec(spec.with_backend(backend))
    assert reference["trace"] == other["trace"], (
        f"trace mismatch for {spec.label or spec.topology.name} on {backend}"
    )
    assert reference["summary"] == other["summary"]
    assert reference["meta"] == other["meta"]
    return reference, other


def make_broadcast_fuzz_spec(rng, case):
    """A randomized fuzz spec switched into broadcast estimate mode."""
    spec = make_fuzz_spec(rng, case, "msgsim_fuzz")
    sim = dict(spec.sim)
    sim["estimate_mode"] = "broadcast"
    sim["broadcast_interval"] = rng.choice([0.5, 1.0, 2.0])
    return ScenarioSpec(
        label=spec.label,
        topology=spec.topology,
        dynamics=spec.dynamics,
        drift=spec.drift,
        delay=spec.delay,
        algorithm=spec.algorithm,
        params=spec.params,
        edge=spec.edge,
        sim=sim,
        initial_ramp_per_edge=spec.initial_ramp_per_edge,
    )


class TestNamedBroadcastScenarios:
    @pytest.mark.parametrize("name", sorted(BROADCAST_SCENARIO_OVERRIDES))
    @pytest.mark.parametrize("backend", ["fast", "vec"])
    def test_backends_agree(self, name, backend):
        spec = scenario(name, **BROADCAST_SCENARIO_OVERRIDES[name])
        reference, other = assert_equivalent(spec, backend)
        assert reference["summary"]["sample_count"] > 5
        assert reference["spec_hash"] == other["spec_hash"]

    def test_partition_scenario_actually_drops_messages(self):
        """The lossy-partition scenario must exercise the drop + forget path."""
        from repro.experiments import registry
        from repro.fastsim.backend import get_backend

        spec = scenario(
            "grid_broadcast_partition",
            **BROADCAST_SCENARIO_OVERRIDES["grid_broadcast_partition"],
        )
        materialised = registry.build_scenario(spec)
        engine = get_backend("fast").build(
            materialised.graph,
            materialised.algorithm_factory,
            materialised.config,
        )
        engine.run(materialised.config.duration)
        assert engine.dropped_count > 0


class TestBroadcastFuzz:
    @pytest.mark.parametrize("case", range(6))
    @pytest.mark.parametrize("backend", ["fast", "vec"])
    def test_random_broadcast_specs_agree(self, case, backend):
        rng = random.Random(80210 + case)
        assert_equivalent(make_broadcast_fuzz_spec(rng, case), backend)

    @pytest.mark.parametrize("delay", FUZZ_DELAYS)
    @pytest.mark.parametrize("backend", ["fast", "vec"])
    def test_every_delay_model_agrees(self, delay, backend):
        spec = ScenarioSpec(
            label=f"msgsim_delay/{delay[0] if delay else 'default'}",
            topology=ComponentSpec("line", {"n": 5}),
            drift=ComponentSpec("two_group", {"swap_period": 5.0}),
            delay=ComponentSpec(*delay) if delay else None,
            algorithm=ComponentSpec("aopt", {"global_skew_bound": 25.0}),
            params={"rho": 0.015, "mu": 0.1},
            edge={"epsilon": 1.0, "tau": 0.5, "delay": 2.0},
            sim={
                "dt": 0.1,
                "duration": 10.0,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
                "estimate_mode": "broadcast",
            },
            initial_ramp_per_edge=1.0,
        )
        assert_equivalent(spec, backend)

    @pytest.mark.parametrize("backend", ["fast", "vec"])
    def test_storm_delay_model_agrees(self, backend):
        """The chaos delay wrapper (generic scalar delay plan) in broadcast mode."""
        spec = ScenarioSpec(
            label="msgsim_delay/storm",
            topology=ComponentSpec("ring", {"n": 6}),
            drift=ComponentSpec("two_group", {"swap_period": 7.0}),
            delay=ComponentSpec(
                "delay_spike_storm",
                {
                    "inner": "uniform",
                    "inner_args": {"low_fraction": 0.2, "high_fraction": 0.8},
                    "period": 8.0,
                    "width": 3.0,
                },
            ),
            algorithm=ComponentSpec("aopt", {"global_skew_bound": 25.0}),
            params={"rho": 0.015, "mu": 0.1},
            edge={"epsilon": 1.0, "tau": 0.5, "delay": 2.0},
            sim={
                "dt": 0.1,
                "duration": 20.0,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
                "estimate_mode": "broadcast",
            },
            initial_ramp_per_edge=1.0,
        )
        assert_equivalent(spec, backend)


class TestBatchedBroadcastEquivalence:
    """Batched vec execution of broadcast specs must match per-run execution."""

    def batch_specs(self):
        return [
            scenario(
                "line_broadcast", n=5, sim={"duration": 25.0}, backend="vec"
            ),
            scenario(
                "line_broadcast",
                n=7,
                broadcast_interval=0.5,
                sim={"duration": 25.0},
                backend="vec",
            ),
            scenario(
                "random_broadcast_delay_storm",
                n=6,
                duration=25.0,
                backend="vec",
            ),
        ]

    def test_batched_matches_single(self):
        specs = self.batch_specs()
        singles = [execute_spec(spec) for spec in specs]
        batched = execute_specs_batched(specs)
        for single, batch in zip(singles, batched):
            assert single["trace"] == batch["trace"]
            assert single["summary"] == batch["summary"]
            assert single["meta"] == batch["meta"]

    def test_batched_matches_reference(self):
        specs = self.batch_specs()
        batched = execute_specs_batched(specs)
        for spec, payload in zip(specs, batched):
            reference = execute_spec(spec.with_backend("reference"))
            assert reference["trace"] == payload["trace"]
            assert reference["summary"] == payload["summary"]


class TestJitBroadcastEquivalence:
    """The jit backend declares broadcast a fusion blocker and inherits the
    bit-identical vec per-step path."""

    def test_jit_agrees_via_fusion_fallback(self):
        if not backend_available("jit"):
            pytest.skip("jit backend unavailable (no provider)")
        from repro.experiments import registry
        from repro.fastsim.backend import get_backend

        spec = scenario("line_broadcast", n=5, sim={"duration": 20.0})
        assert_equivalent(spec, "jit")
        materialised = registry.build_scenario(spec)
        engine = get_backend("jit").build(
            materialised.graph,
            materialised.algorithm_factory,
            materialised.config,
        )
        blocker = engine._ctx._fusion_blocker()
        assert blocker is not None and "broadcast" in blocker
