"""Retry/backoff behaviour of the hardened :class:`ServiceClient`.

Driven against scripted stub servers on ephemeral localhost ports: an HTTP
server whose response sequence per path is programmable (503-then-ok), and
a raw socket server that accepts connections and drops them mid-request
(the "response never arrived" transport failure).  No real daemon, no real
sleeping -- the backoff sleep is injected and recorded.
"""

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service.client import ClientError, RetryExhaustedError, ServiceClient


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Serves scripted status codes; records every request it sees."""

    protocol_version = "HTTP/1.1"
    script = None  # list of int status codes, consumed per request
    seen = None  # list of (method, path)
    lock = None

    def log_message(self, *args):
        pass

    def _serve(self):
        with self.lock:
            self.seen.append((self.command, self.path))
            status = self.script.pop(0) if self.script else 200
        body = json.dumps(
            {"ok": True} if status < 400 else {"error": f"scripted {status}"}
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _serve
    do_POST = _serve


def scripted_server(script):
    handler = type(
        "Scripted",
        (_ScriptedHandler,),
        {"script": list(script), "seen": [], "lock": threading.Lock()},
    )
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return httpd, handler


@pytest.fixture
def sleeps():
    return []


def make_client(httpd, sleeps, **kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff_base", 0.2)
    return ServiceClient(
        f"http://127.0.0.1:{httpd.server_port}", sleep=sleeps.append, **kwargs
    )


class TestHttpRetry:
    def test_get_retries_through_503_and_succeeds(self, sleeps):
        httpd, handler = scripted_server([503, 503, 200])
        try:
            client = make_client(httpd, sleeps)
            assert client.healthz() == {"ok": True}
        finally:
            httpd.shutdown()
        assert [m for m, _ in handler.seen] == ["GET", "GET", "GET"]
        # Deterministic exponential backoff: 0.2, then 0.4.
        assert sleeps == [pytest.approx(0.2), pytest.approx(0.4)]

    def test_retry_budget_exhausts_with_full_attempt_log(self, sleeps):
        httpd, handler = scripted_server([503] * 10)
        try:
            client = make_client(httpd, sleeps, retries=2)
            with pytest.raises(RetryExhaustedError) as excinfo:
                client.healthz()
        finally:
            httpd.shutdown()
        err = excinfo.value
        assert err.status == 503
        assert len(err.attempts) == 3  # 1 try + 2 retries
        assert [a["attempt"] for a in err.attempts] == [1, 2, 3]
        assert err.attempts[0]["backoff"] == pytest.approx(0.2)
        assert err.attempts[1]["backoff"] == pytest.approx(0.4)
        assert err.attempts[-1]["backoff"] is None  # no sleep after the last
        assert len(handler.seen) == 3

    def test_backoff_is_capped_at_backoff_max(self, sleeps):
        httpd, _ = scripted_server([503] * 10)
        try:
            client = make_client(httpd, sleeps, retries=4, backoff_max=0.5)
            with pytest.raises(RetryExhaustedError):
                client.healthz()
        finally:
            httpd.shutdown()
        assert sleeps == [
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.5),
            pytest.approx(0.5),
        ]

    def test_post_does_not_retry_503(self, sleeps):
        """A 503 means the server *saw* the POST; replaying it could
        duplicate the submission, so it surfaces immediately."""
        httpd, handler = scripted_server([503, 200])
        try:
            client = make_client(httpd, sleeps)
            with pytest.raises(ClientError) as excinfo:
                client._json("POST", "/sweeps", {"specs": []})
        finally:
            httpd.shutdown()
        assert not isinstance(excinfo.value, RetryExhaustedError)
        assert excinfo.value.status == 503
        assert handler.seen == [("POST", "/sweeps")]
        assert sleeps == []

    def test_non_retryable_statuses_surface_immediately(self, sleeps):
        httpd, handler = scripted_server([404])
        try:
            client = make_client(httpd, sleeps)
            with pytest.raises(ClientError) as excinfo:
                client.healthz()
        finally:
            httpd.shutdown()
        assert excinfo.value.status == 404
        assert excinfo.value.payload == {"error": "scripted 404"}
        assert len(handler.seen) == 1
        assert sleeps == []


class TestTransportRetry:
    def _dead_port(self):
        # Bind-then-close: the kernel won't reuse it immediately, so
        # connecting gets ECONNREFUSED deterministically.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_connection_refused_retries_even_post_then_exhausts(self, sleeps):
        port = self._dead_port()
        client = ServiceClient(
            f"http://127.0.0.1:{port}", retries=2, backoff_base=0.1,
            sleep=sleeps.append,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            client._json("POST", "/sweeps", {"specs": []})
        # Connect never succeeded: no byte left the process, so the POST
        # was safe to retry -- and every attempt is in the log.
        assert len(excinfo.value.attempts) == 3
        assert excinfo.value.status is None
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_retry_exhausted_is_a_clienterror(self):
        port = self._dead_port()
        client = ServiceClient(
            f"http://127.0.0.1:{port}", retries=0, sleep=lambda s: None
        )
        with pytest.raises(ClientError):
            client.healthz()

    def test_mid_request_drop_retries_get_but_not_post(self, sleeps):
        """A server that reads the request then drops the connection: the
        request *may* have been processed, so only GET retries."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        port = listener.getsockname()[1]
        accepted = []
        stop = threading.Event()

        def loop():
            listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                accepted.append(1)
                try:
                    conn.recv(65536)
                finally:
                    conn.close()

        thread = threading.Thread(target=loop, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}",
                retries=2,
                backoff_base=0.0,
                timeout=5.0,
                sleep=sleeps.append,
            )
            with pytest.raises(RetryExhaustedError) as excinfo:
                client.healthz()
            assert len(excinfo.value.attempts) == 3
            get_connections = len(accepted)
            assert get_connections == 3

            with pytest.raises(ClientError) as post_exc:
                client._json("POST", "/sweeps", {"specs": []})
            assert not isinstance(post_exc.value, RetryExhaustedError)
            # The POST connected exactly once: no replay after bytes left.
            assert len(accepted) == get_connections + 1
        finally:
            stop.set()
            thread.join(timeout=2.0)
            listener.close()


class TestClientConfiguration:
    def test_timeout_knobs_default_and_override(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=7.0)
        assert client.connect_timeout == 7.0
        assert client.read_timeout == 7.0
        client = ServiceClient(
            "http://127.0.0.1:1", timeout=7.0, connect_timeout=1.0, read_timeout=30.0
        )
        assert client.connect_timeout == 1.0
        assert client.read_timeout == 30.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ClientError):
            ServiceClient("ftp://example.com")
        with pytest.raises(ClientError):
            ServiceClient("not a url")
        with pytest.raises(ClientError):
            ServiceClient("http://127.0.0.1:1", retries=-1)
        with pytest.raises(ClientError):
            ServiceClient("http://127.0.0.1:1", backoff_base=-0.1)
