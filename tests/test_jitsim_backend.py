"""Unit tests for the jitsim subsystem: backend plumbing, provider
resolution, graceful degradation without numba/compiler, cache-key suffix,
batch dispatch, executor fallback accounting and the float32 opt-in."""

import logging

import pytest

from repro.experiments import (
    ExperimentRunner,
    batch_key,
    execute_spec,
    execute_specs_batched,
    registry,
    scenario,
)
from repro.experiments.executor import ResultCache, SweepStats
from repro.fastsim import backend as backend_mod
from repro.fastsim import (
    BackendUnavailableError,
    backend_available,
    get_backend,
)

np = pytest.importorskip("numpy")

from repro.jitsim import providers  # noqa: E402
from repro.jitsim import (  # noqa: E402
    JitEngine,
    ProviderUnavailableError,
    provider_available,
    reset_provider_cache,
)


def quick_spec(**overrides):
    defaults = dict(n=5, sim={"duration": 6.0})
    defaults.update(overrides)
    return scenario("quickstart_line", **defaults)


@pytest.fixture
def fresh_providers(monkeypatch):
    """Reset the resolved-provider cache around a test that monkeypatches
    availability probes, and again afterwards so later tests see reality."""
    reset_provider_cache()
    yield monkeypatch
    reset_provider_cache()


class TestJitBackendRegistration:
    def test_jit_backend_is_registered(self):
        backend = get_backend("jit")
        assert backend.name == "jit"

    @pytest.mark.skipif(not provider_available(), reason="no jit provider here")
    def test_build_returns_a_jit_engine(self):
        materialised = registry.build_scenario(quick_spec(backend="jit"))
        engine = get_backend("jit").build(
            materialised.graph, materialised.algorithm_factory, materialised.config
        )
        assert isinstance(engine, JitEngine)

    @pytest.mark.skipif(not provider_available(), reason="no jit provider here")
    def test_backend_never_enables_float32(self):
        """The registry only ever builds exact engines; float32 is an
        engine-level experiment flag outside the spec/cache contract."""
        materialised = registry.build_scenario(quick_spec(backend="jit"))
        engine = get_backend("jit").build(
            materialised.graph, materialised.algorithm_factory, materialised.config
        )
        assert engine._ctx._float32 is False


class TestProviderResolution:
    def test_unavailable_without_numba_and_compiler(self, fresh_providers):
        fresh_providers.delenv(providers.PROVIDER_ENV, raising=False)
        fresh_providers.setattr(providers, "_numba_available", lambda: False)
        fresh_providers.setattr(providers, "_cc_usable", lambda: False)
        assert provider_available() is False
        assert backend_available("jit") is False

    def test_build_raises_backend_unavailable(self, fresh_providers):
        fresh_providers.delenv(providers.PROVIDER_ENV, raising=False)
        fresh_providers.setattr(providers, "_numba_available", lambda: False)
        fresh_providers.setattr(providers, "_cc_usable", lambda: False)
        materialised = registry.build_scenario(quick_spec(backend="jit"))
        with pytest.raises(BackendUnavailableError) as excinfo:
            get_backend("jit").build(
                materialised.graph,
                materialised.algorithm_factory,
                materialised.config,
            )
        message = str(excinfo.value)
        assert "numba" in message
        # The error lists the backends that can actually run.
        assert "fast" in message and "reference" in message

    def test_unavailable_without_numpy(self, fresh_providers):
        fresh_providers.setattr(backend_mod, "_numpy_available", lambda: False)
        assert backend_available("jit") is False

    def test_forced_unknown_provider_reports_unavailable(self, fresh_providers):
        fresh_providers.setenv(providers.PROVIDER_ENV, "warp-drive")
        with pytest.raises(ProviderUnavailableError, match="warp-drive"):
            providers.get_provider()
        assert provider_available() is False

    def test_forced_python_provider_resolves(self, fresh_providers):
        fresh_providers.setenv(providers.PROVIDER_ENV, "python")
        provider = providers.get_provider()
        assert provider is not None
        assert provider.name == "python"
        # The pure-python provider is opt-in only: it never wins the
        # unforced resolution race (numba -> cc -> None).
        assert "python" in providers.available_provider_names()

    def test_cli_list_marks_jit_unavailable(self, fresh_providers, capsys):
        from repro.experiments import cli

        fresh_providers.delenv(providers.PROVIDER_ENV, raising=False)
        fresh_providers.setattr(providers, "_numba_available", lambda: False)
        fresh_providers.setattr(providers, "_cc_usable", lambda: False)
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "jit [unavailable" in out

    def test_healthz_reports_backend_availability(self, tmp_path):
        from repro.service.core import ServiceConfig, SweepService

        service = SweepService(
            tmp_path / "cache", config=ServiceConfig(workers=1)
        )
        payload = service.describe()
        assert set(payload["backends"]) == {"fast", "jit", "reference", "vec"}
        assert payload["backends"]["reference"] is True
        assert payload["backends"]["jit"] == backend_available("jit")


class TestCacheKeySuffix:
    def test_jit_results_get_their_own_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = quick_spec()
        reference_key = cache.key_for(spec)
        jit_key = cache.key_for(spec.with_backend("jit"))
        assert jit_key == reference_key + ".jit"

    def test_backend_is_excluded_from_the_content_hash(self):
        spec = quick_spec()
        assert spec.with_backend("jit").content_hash() == spec.content_hash()


@pytest.mark.skipif(not provider_available(), reason="no jit provider here")
class TestBatchDispatch:
    def test_jit_specs_are_batchable(self):
        key = batch_key(quick_spec(backend="jit"))
        assert key is not None
        assert key[0] == "jit"

    def test_jit_and_vec_batches_never_mix(self):
        jit_key = batch_key(quick_spec(backend="jit"))
        vec_key = batch_key(quick_spec(backend="vec"))
        assert jit_key != vec_key

    def test_mixed_backend_list_runs_each_on_its_engine(self):
        specs = [quick_spec(backend="jit"), quick_spec(n=6, backend="vec")]
        payloads = execute_specs_batched(specs)
        for spec, payload in zip(specs, payloads):
            expected = execute_spec(spec.with_backend("reference"))
            assert payload["trace"] == expected["trace"]
            assert payload["summary"] == expected["summary"]


class TestFallbackAccounting:
    def unsupported_spec(self):
        return scenario(
            "quickstart_line",
            n=4,
            algorithm="MaxPropagation",
            sim={"duration": 2.0},
            backend="jit",
        )

    def test_sweep_stats_tracks_fallback_origin_backends(self):
        stats = SweepStats(total=4)
        stats.count_fallback("jit")
        stats.count_fallback("jit")
        stats.count_fallback("vec")
        assert stats.fallbacks == 3
        assert stats.fallback_backends == {"jit": 2, "vec": 1}
        description = stats.describe()
        assert "3 fell back to reference" in description
        assert "2 from jit" in description
        assert "1 from vec" in description

    @pytest.mark.skipif(not provider_available(), reason="no jit provider here")
    def test_jit_fallback_is_counted_per_backend(self, tmp_path, caplog):
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        with caplog.at_level(
            logging.WARNING, logger="repro.experiments.executor"
        ):
            runs, stats = runner.run_all([self.unsupported_spec()])
        assert stats.fallbacks == 1
        assert stats.fallback_backends == {"jit": 1}
        (run,) = runs
        assert run.spec.backend == "reference"
        assert run.requested_backend == "jit"
        assert runner.stats.fallback_backends == {"jit": 1}

    def test_sweep_stats_attributes_broadcast_fallbacks(self):
        stats = SweepStats(total=3)
        stats.count_fallback("fast", estimate_mode="broadcast")
        stats.count_fallback("jit")
        assert stats.fallbacks == 2
        assert stats.fallback_backends == {"fast": 1, "jit": 1}
        assert stats.broadcast_fallbacks == {"fast": 1}
        description = stats.describe()
        assert "broadcast-mode fallbacks: 1 from fast" in description

    def test_broadcast_fallback_is_attributed_per_backend(self, tmp_path, caplog):
        """A broadcast spec with a feature the fast engine refuses (the
        diameter tracker) falls back to reference and shows up in the
        broadcast-specific accounting."""
        spec = scenario(
            "line_broadcast",
            n=4,
            sim={"duration": 4.0, "track_diameter": True},
            backend="fast",
        )
        runner = ExperimentRunner(cache_dir=tmp_path, workers=1)
        with caplog.at_level(
            logging.WARNING, logger="repro.experiments.executor"
        ):
            runs, stats = runner.run_all([spec])
        assert stats.fallbacks == 1
        assert stats.fallback_backends == {"fast": 1}
        assert stats.broadcast_fallbacks == {"fast": 1}
        (run,) = runs
        assert run.spec.backend == "reference"
        assert run.requested_backend == "fast"
        assert runner.stats.broadcast_fallbacks == {"fast": 1}
        assert "broadcast-mode fallbacks: 1 from fast" in stats.describe()


@pytest.mark.skipif(not provider_available(), reason="no jit provider here")
class TestFloat32OptIn:
    def build_engine(self, **kwargs):
        materialised = registry.build_scenario(quick_spec(sim={"duration": 10.0}))
        return (
            JitEngine(
                materialised.graph,
                materialised.algorithm_factory,
                materialised.config,
                **kwargs,
            ),
            materialised,
        )

    def test_float32_runs_and_stays_close_but_is_not_exact_contract(self):
        exact, materialised = self.build_engine()
        exact.run(materialised.config.duration)
        narrowed, materialised = self.build_engine(float32=True)
        assert narrowed._ctx._float32 is True
        narrowed.run(materialised.config.duration)
        exact_skews = [s.global_skew() for s in exact.trace.samples]
        narrow_skews = [s.global_skew() for s in narrowed.trace.samples]
        assert len(exact_skews) == len(narrow_skews)
        # Approximate agreement only -- float32 is explicitly outside the
        # bit-identical family, which is why the backend never enables it.
        assert np.allclose(exact_skews, narrow_skews, rtol=1e-3, atol=1e-3)


class TestUniformConfigMarker:
    def test_aopt_factory_declares_uniform_config(self):
        materialised = registry.build_scenario(quick_spec())
        assert getattr(materialised.algorithm_factory, "uniform_config", False)
