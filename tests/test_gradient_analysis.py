"""Tests for repro.analysis.gradient."""

import pytest

from repro.analysis import gradient
from repro.network import paths, topology
from repro.network.edge import EdgeParams
from repro.sim.trace import Trace, TraceSample


def sample(t, values):
    nodes = list(values)
    return TraceSample(
        time=t,
        logical=dict(values),
        hardware=dict(values),
        multipliers={n: 1.0 for n in nodes},
        modes={n: "slow" for n in nodes},
        max_estimates={n: max(values.values()) for n in nodes},
    )


@pytest.fixture
def line_graph():
    return topology.line(5, EdgeParams(epsilon=1.0, tau=0.5, delay=2.0))


class TestBound:
    def test_gradient_bound_matches_parameters(self, params):
        assert gradient.gradient_bound(4.0, 100.0, params) == pytest.approx(
            params.gradient_skew_bound(4.0, 100.0)
        )

    def test_local_skew_prediction(self, params):
        kappa = params.kappa_for(1.0, 0.5)
        assert gradient.local_skew_prediction(kappa, 100.0, params) > kappa


class TestViolationChecks:
    def test_no_violation_for_small_skews(self, params, line_graph):
        trace = Trace(1.0)
        trace.record(sample(0.0, {n: 0.1 * n for n in line_graph.nodes}))
        violations = gradient.check_trace(trace, line_graph, 50.0, params)
        assert violations == []

    def test_violation_detected_for_huge_local_skew(self, params, line_graph):
        trace = Trace(1.0)
        values = {n: 0.0 for n in line_graph.nodes}
        values[1] = 500.0
        trace.record(sample(0.0, values))
        violations = gradient.check_trace(trace, line_graph, 50.0, params)
        assert violations
        worst = max(violations, key=lambda v: v.excess)
        assert worst.excess > 0
        assert worst.skew > worst.bound

    def test_check_sample_respects_tolerance(self, params, line_graph):
        distances = paths.all_pairs_distances(
            line_graph, paths.kappa_weight(line_graph, params)
        )
        violations = gradient.check_sample(
            sample(0.0, {n: 0.0 for n in line_graph.nodes}), distances, 50.0, params
        )
        assert violations == []

    def test_check_trace_start_filter(self, params, line_graph):
        trace = Trace(1.0)
        bad = {n: 0.0 for n in line_graph.nodes}
        bad[1] = 500.0
        trace.record(sample(0.0, bad))
        trace.record(sample(10.0, {n: 0.0 for n in line_graph.nodes}))
        assert gradient.check_trace(trace, line_graph, 50.0, params, start=5.0) == []


class TestProfile:
    def test_profile_sorted_and_bounded(self, params, line_graph):
        trace = Trace(1.0)
        trace.record(sample(0.0, {n: 0.3 * n for n in line_graph.nodes}))
        points = gradient.profile(trace, line_graph, 50.0, params)
        distances = [p.distance for p in points]
        assert distances == sorted(distances)
        assert all(p.max_skew <= p.bound for p in points)
        assert all(0.0 <= p.ratio <= 1.0 for p in points)

    def test_profile_uses_kappa_distances_by_default(self, params, line_graph):
        trace = Trace(1.0)
        trace.record(sample(0.0, {n: 0.0 for n in line_graph.nodes}))
        points = gradient.profile(trace, line_graph, 50.0, params)
        kappa = params.kappa_for(1.0, 0.5)
        assert points[0].distance == pytest.approx(kappa)

    def test_logarithmic_shape_score(self, params):
        import math

        diameter = 16.0
        points = [
            gradient.GradientPoint(
                distance=d, max_skew=d * (math.log(diameter / d) + 1.0), bound=100.0
            )
            for d in [1.0, 2.0, 4.0, 8.0, 16.0]
        ]
        score = gradient.logarithmic_shape_score(points)
        assert score == pytest.approx(1.0)

    def test_logarithmic_shape_score_needs_points(self):
        assert gradient.logarithmic_shape_score([]) is None
