"""Tests for repro.analysis.legality."""

import pytest

from repro.analysis import legality


@pytest.fixture
def line_edges():
    """A 4-node line with kappa = 4 on every edge, same set on every level."""
    edges = [(0, 1, 4.0), (1, 2, 4.0), (2, 3, 4.0)]
    return {1: edges, 2: edges, 3: edges}


class TestPsiAndXi:
    def test_psi_zero_for_synchronized_clocks(self, line_edges):
        logical = {0: 10.0, 1: 10.0, 2: 10.0, 3: 10.0}
        assert legality.psi(0, 1, logical, line_edges[1]) == 0.0

    def test_psi_positive_when_far_node_ahead(self, line_edges):
        logical = {0: 0.0, 1: 0.0, 2: 0.0, 3: 30.0}
        # Path weight 12, level 1: psi = 30 - 0 - 1.5 * 12 = 12.
        assert legality.psi(0, 1, logical, line_edges[1]) == pytest.approx(12.0)

    def test_psi_uses_shortest_path(self):
        edges = [(0, 1, 4.0), (1, 2, 4.0), (0, 2, 2.0)]
        logical = {0: 0.0, 1: 0.0, 2: 10.0}
        # Direct edge weight 2 gives psi = 10 - 1.5*2 = 7; via node 1 only 10 - 12.
        assert legality.psi(0, 1, logical, edges) == pytest.approx(7.0)

    def test_xi_measures_being_ahead(self, line_edges):
        logical = {0: 30.0, 1: 0.0, 2: 0.0, 3: 0.0}
        # xi at node 0, level 1: 30 - 0 - 1*4 = 26 over the one-hop path.
        assert legality.xi(0, 1, logical, line_edges[1]) == pytest.approx(26.0)

    def test_level_validation(self, line_edges):
        with pytest.raises(ValueError):
            legality.psi(0, 0, {0: 0.0}, line_edges[1])
        with pytest.raises(ValueError):
            legality.xi(0, 0, {0: 0.0}, line_edges[1])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            legality.psi(0, 1, {0: 0.0, 1: 0.0}, [(0, 1, 0.0)])


class TestLegalityChecks:
    def test_synchronized_system_is_legal(self, params, line_edges):
        logical = {n: 5.0 for n in range(4)}
        sequence = legality.gradient_sequence(50.0, params, 3)
        assert legality.is_legal(logical, line_edges, sequence)

    def test_large_skew_violates_higher_levels(self, params, line_edges):
        logical = {0: 0.0, 1: 0.0, 2: 0.0, 3: 60.0}
        sequence = legality.gradient_sequence(50.0, params, 3)
        violations = legality.legality_violations(logical, line_edges, sequence)
        assert violations
        assert all(v.excess >= 0 for v in violations)
        # The higher levels have stricter requirements (C_s shrinks with s),
        # so a violation must in particular show up on the highest level.
        assert any(v.level == 3 for v in violations)

    def test_gradient_sequence_structure(self, params):
        sequence = legality.gradient_sequence(50.0, params, 4)
        assert sequence[1] == pytest.approx(100.0)
        assert sequence[2] == pytest.approx(100.0)
        assert sequence[3] == pytest.approx(100.0 / params.sigma)
        assert len(sequence) == 5

    def test_levels_outside_sequence_ignored(self, params, line_edges):
        logical = {n: 0.0 for n in range(4)}
        sequence = legality.gradient_sequence(50.0, params, 2)
        # level_edges contains level 3 but the sequence stops at 2.
        assert legality.is_legal(logical, line_edges, sequence)

    def test_pairwise_bound_from_legality(self, params):
        sequence = legality.gradient_sequence(50.0, params, 3)
        bound = legality.pairwise_bound_from_legality(8.0, 2, sequence)
        assert bound == pytest.approx(2.5 * 8.0 + sequence[2] / 2.0)

    def test_pairwise_bound_validation(self, params):
        sequence = legality.gradient_sequence(50.0, params, 3)
        with pytest.raises(ValueError):
            legality.pairwise_bound_from_legality(8.0, 9, sequence)
        with pytest.raises(ValueError):
            legality.pairwise_bound_from_legality(-1.0, 2, sequence)

    def test_lemma_5_14_consistency(self, params, line_edges):
        """Legality implies the pairwise bound of Lemma 5.14."""
        logical = {0: 0.0, 1: 2.0, 2: 4.0, 3: 6.0}
        sequence = legality.gradient_sequence(50.0, params, 3)
        assert legality.is_legal(logical, line_edges, sequence)
        for level in (1, 2, 3):
            for node, other, distance in [(0, 1, 4.0), (0, 3, 12.0), (1, 3, 8.0)]:
                bound = legality.pairwise_bound_from_legality(distance, level, sequence)
                assert abs(logical[node] - logical[other]) <= bound
