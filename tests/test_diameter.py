"""Tests for repro.network.diameter."""

import math

import pytest

from repro.network.diameter import DiameterTracker, static_diameter_lower_bound


class TestDiameterTracker:
    def test_initial_state(self):
        tracker = DiameterTracker([0, 1, 2], rho=0.01)
        assert tracker.knowledge_error(0, 0) == 0.0
        assert tracker.knowledge_error(0, 1) == math.inf
        assert not tracker.is_finite()

    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            DiameterTracker([0], rho=1.5)

    def test_rejects_empty_nodes(self):
        with pytest.raises(ValueError):
            DiameterTracker([], rho=0.01)

    def test_message_transfers_knowledge(self):
        tracker = DiameterTracker([0, 1], rho=0.01)
        tracker.record_message(0, 1, delay_uncertainty=1.0, transit_time=0.5)
        error = tracker.knowledge_error(1, 0)
        assert error == pytest.approx((1 - 0.01) * 1.0 + 2 * 0.01 * 0.5)

    def test_knowledge_ages(self):
        tracker = DiameterTracker([0, 1], rho=0.01)
        tracker.record_message(0, 1, 1.0, 0.0)
        before = tracker.knowledge_error(1, 0)
        tracker.advance(10.0)
        after = tracker.knowledge_error(1, 0)
        assert after == pytest.approx(before + tracker.aging_rate() * 10.0)

    def test_own_knowledge_never_ages(self):
        tracker = DiameterTracker([0, 1], rho=0.01)
        tracker.advance(100.0)
        assert tracker.knowledge_error(0, 0) == 0.0

    def test_transitive_propagation(self):
        tracker = DiameterTracker([0, 1, 2], rho=0.01)
        tracker.record_message(0, 1, 1.0, 0.5)
        tracker.record_message(1, 2, 1.0, 0.5)
        assert tracker.knowledge_error(2, 0) < math.inf
        assert tracker.knowledge_error(2, 0) > tracker.knowledge_error(1, 0)

    def test_better_message_improves_knowledge(self):
        tracker = DiameterTracker([0, 1], rho=0.01)
        tracker.record_message(0, 1, 2.0, 1.0)
        worse = tracker.knowledge_error(1, 0)
        tracker.record_message(0, 1, 0.5, 0.1)
        assert tracker.knowledge_error(1, 0) < worse

    def test_diameter_is_max_radius(self):
        tracker = DiameterTracker([0, 1, 2], rho=0.01)
        for sender, receiver in [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]:
            tracker.record_message(sender, receiver, 1.0, 0.5)
        assert tracker.is_finite()
        assert tracker.diameter() == pytest.approx(
            max(tracker.radius(v) for v in tracker.nodes)
        )

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            DiameterTracker([0], rho=0.01).advance(-1.0)

    def test_unknown_nodes_rejected(self):
        tracker = DiameterTracker([0, 1], rho=0.01)
        with pytest.raises(ValueError):
            tracker.record_message(0, 9, 1.0, 0.5)
        with pytest.raises(ValueError):
            tracker.radius(9)


class TestStaticLowerBound:
    def test_half_of_sum(self):
        assert static_diameter_lower_bound([1.0, 2.0, 3.0]) == 3.0

    def test_empty_is_zero(self):
        assert static_diameter_lower_bound([]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            static_diameter_lower_bound([1.0, -2.0])
