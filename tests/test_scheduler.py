"""Tests for repro.sim.events and repro.sim.scheduler."""

import pytest

from repro.sim.events import EventError, make_event
from repro.sim.scheduler import EventScheduler


class TestEvents:
    def test_make_event(self):
        fired = []
        event = make_event(1.0, fired.append, "test")
        event.fire()
        assert fired == [1.0]

    def test_cancelled_event_does_not_fire(self):
        fired = []
        event = make_event(1.0, fired.append)
        event.cancel()
        event.fire()
        assert fired == []

    def test_negative_time_rejected(self):
        with pytest.raises(EventError):
            make_event(-1.0, lambda t: None)

    def test_non_callable_rejected(self):
        with pytest.raises(EventError):
            make_event(1.0, "nope")

    def test_events_order_by_time_then_sequence(self):
        a = make_event(1.0, lambda t: None)
        b = make_event(1.0, lambda t: None)
        c = make_event(0.5, lambda t: None)
        assert c < a < b


class TestScheduler:
    def test_schedule_and_run_due(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda t: fired.append(("a", t)))
        scheduler.schedule(2.0, lambda t: fired.append(("b", t)))
        assert scheduler.run_due(1.5) == 1
        assert fired == [("a", 1.0)]
        assert scheduler.run_due(3.0) == 1
        assert len(scheduler) == 0

    def test_due_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(2.0, lambda t: fired.append(2.0))
        scheduler.schedule(1.0, lambda t: fired.append(1.0))
        scheduler.schedule(1.5, lambda t: fired.append(1.5))
        scheduler.run_due(5.0)
        assert fired == [1.0, 1.5, 2.0]

    def test_ties_resolve_in_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda t: fired.append("first"))
        scheduler.schedule(1.0, lambda t: fired.append("second"))
        scheduler.run_due(1.0)
        assert fired == ["first", "second"]

    def test_peek_time(self):
        scheduler = EventScheduler()
        assert scheduler.peek_time() is None
        scheduler.schedule(4.0, lambda t: None)
        scheduler.schedule(2.0, lambda t: None)
        assert scheduler.peek_time() == 2.0

    def test_cancelled_events_skipped(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule(1.0, lambda t: fired.append("cancelled"))
        scheduler.schedule(1.0, lambda t: fired.append("kept"))
        event.cancel()
        scheduler.run_due(2.0)
        assert fired == ["kept"]
        assert scheduler.fired_count == 1

    def test_callbacks_can_schedule_followups(self):
        scheduler = EventScheduler()
        fired = []

        def first(t):
            fired.append("first")
            scheduler.schedule(t, lambda t2: fired.append("followup"))

        scheduler.schedule(1.0, first)
        scheduler.run_due(1.0)
        assert fired == ["first", "followup"]

    def test_runaway_zero_delay_loop_detected(self):
        scheduler = EventScheduler()

        def reschedule(t):
            scheduler.schedule(t, reschedule)

        scheduler.schedule(1.0, reschedule)
        with pytest.raises(EventError):
            scheduler.run_due(1.0)

    def test_clear(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda t: None)
        scheduler.clear()
        assert len(scheduler) == 0
        assert scheduler.run_due(5.0) == 0

    def test_len_counts_pending_only(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda t: None)
        event = scheduler.schedule(2.0, lambda t: None)
        event.cancel()
        assert len(scheduler) == 1
