"""Tests for the public package surface (imports and re-exports)."""

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro.core",
    "repro.core.algorithm",
    "repro.core.clocks",
    "repro.core.conditions",
    "repro.core.insertion",
    "repro.core.interfaces",
    "repro.core.max_estimate",
    "repro.core.neighbor_sets",
    "repro.core.parameters",
    "repro.core.skew_estimates",
    "repro.core.triggers",
    "repro.network",
    "repro.network.diameter",
    "repro.network.dynamic_graph",
    "repro.network.dynamics",
    "repro.network.edge",
    "repro.network.paths",
    "repro.network.topology",
    "repro.estimate",
    "repro.estimate.estimate_layer",
    "repro.estimate.message_layer",
    "repro.estimate.messages",
    "repro.estimate.oracle_layer",
    "repro.estimate.transport",
    "repro.sim",
    "repro.sim.delay",
    "repro.sim.drift",
    "repro.sim.engine",
    "repro.sim.events",
    "repro.sim.runner",
    "repro.sim.scheduler",
    "repro.sim.trace",
    "repro.baselines",
    "repro.experiments",
    "repro.experiments.cli",
    "repro.experiments.executor",
    "repro.experiments.registry",
    "repro.experiments.results",
    "repro.experiments.spec",
    "repro.analysis",
    "repro.analysis.gradient",
    "repro.analysis.legality",
    "repro.analysis.live_legality",
    "repro.analysis.report",
    "repro.analysis.skew",
    "repro.analysis.stabilization",
    "repro.lower_bounds",
    "repro.lower_bounds.analytic",
    "repro.lower_bounds.insertion_bound",
    "repro.lower_bounds.shifting",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


def test_version_string():
    assert repro.__version__ == "1.8.0"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_top_level_convenience_types():
    params = repro.Parameters(rho=0.01, mu=0.1)
    assert params.is_valid()
    graph = repro.DynamicGraph(range(3))
    graph.add_edge(0, 1, repro.EdgeParams())
    assert graph.has_edge(0, 1)
    config = repro.SimulationConfig(params=params, duration=1.0)
    assert config.duration == 1.0


def test_every_public_module_has_docstring():
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} is missing a module docstring"


def test_every_public_class_in_core_has_docstring():
    from repro.core import algorithm, insertion, max_estimate, neighbor_sets, triggers

    for module in (algorithm, insertion, max_estimate, neighbor_sets, triggers):
        for name in dir(module):
            obj = getattr(module, name)
            if isinstance(obj, type) and obj.__module__ == module.__name__:
                assert obj.__doc__, f"{module.__name__}.{name} is missing a docstring"
