"""Tests for repro.network.dynamic_graph."""

import pytest

from repro.network.dynamic_graph import DynamicGraph, EdgeEvent, GraphError
from repro.network.edge import EdgeParams


@pytest.fixture
def triangle():
    graph = DynamicGraph(range(3))
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 2)
    return graph


class TestConstruction:
    def test_nodes_sorted_and_deduplicated(self):
        graph = DynamicGraph([3, 1, 2, 1])
        assert graph.nodes == [1, 2, 3]
        assert graph.node_count == 3

    def test_empty_node_set_rejected(self):
        with pytest.raises(GraphError):
            DynamicGraph([])

    def test_has_node(self):
        graph = DynamicGraph([0, 1])
        assert graph.has_node(0)
        assert not graph.has_node(5)


class TestEdges:
    def test_add_edge_creates_both_directions(self, triangle):
        assert triangle.has_directed_edge(0, 1)
        assert triangle.has_directed_edge(1, 0)
        assert triangle.has_edge(0, 1)

    def test_directed_edge_only_one_way(self):
        graph = DynamicGraph(range(2))
        graph.add_directed_edge(0, 1)
        assert graph.has_directed_edge(0, 1)
        assert not graph.has_directed_edge(1, 0)
        assert not graph.has_edge(0, 1)

    def test_neighbors_and_symmetric_neighbors(self):
        graph = DynamicGraph(range(3))
        graph.add_directed_edge(0, 1)
        graph.add_edge(0, 2)
        assert graph.neighbors(0) == {1, 2}
        assert graph.symmetric_neighbors(0) == {2}

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 2)

    def test_self_loop_rejected(self):
        graph = DynamicGraph(range(2))
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_unknown_node_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.add_edge(0, 9)
        with pytest.raises(GraphError):
            triangle.neighbors(9)

    def test_edges_iterates_undirected_once(self, triangle):
        assert triangle.edge_count() == 3
        edges = {tuple(e) for e in triangle.edges()}
        assert edges == {(0, 1), (1, 2), (0, 2)}

    def test_directed_edges_listing(self):
        graph = DynamicGraph(range(2))
        graph.add_directed_edge(0, 1)
        assert list(graph.directed_edges()) == [(0, 1)]


class TestEdgeParams:
    def test_default_params_returned(self, triangle):
        assert triangle.edge_params(0, 1).epsilon == 1.0

    def test_set_and_get_params(self, triangle):
        custom = EdgeParams(epsilon=3.0, tau=1.0, delay=4.0)
        triangle.set_edge_params(0, 1, custom)
        assert triangle.edge_params(1, 0) == custom

    def test_params_attached_on_add(self):
        graph = DynamicGraph(range(2))
        custom = EdgeParams(epsilon=2.0)
        graph.add_edge(0, 1, custom)
        assert graph.edge_params(0, 1) == custom
        assert len(graph.known_edge_params()) == 1


class TestSchedule:
    def test_schedule_and_pop_events(self):
        graph = DynamicGraph(range(3))
        graph.schedule_edge_up(5.0, 0, 1)
        graph.schedule_edge_down(7.0, 0, 1)
        due = graph.pop_events_until(5.0)
        assert len(due) == 2  # both directions of the "up"
        assert all(e.kind == "up" for e in due)
        assert len(graph.pending_events()) == 2

    def test_events_sorted_by_time(self):
        graph = DynamicGraph(range(3))
        graph.schedule_edge_up(9.0, 1, 2)
        graph.schedule_edge_up(2.0, 0, 1)
        events = graph.pending_events()
        assert events[0].time <= events[-1].time

    def test_edge_up_skew_respects_tau(self):
        graph = DynamicGraph(range(2))
        graph.set_edge_params(0, 1, EdgeParams(tau=0.5))
        graph.schedule_edge_up(1.0, 0, 1, skew=0.5)
        with pytest.raises(GraphError):
            graph.schedule_edge_up(1.0, 0, 1, skew=0.9)

    def test_apply_event(self):
        graph = DynamicGraph(range(2))
        graph.apply_event(EdgeEvent(0.0, "up", 0, 1))
        assert graph.has_directed_edge(0, 1)
        graph.apply_event(EdgeEvent(1.0, "down", 0, 1))
        assert not graph.has_directed_edge(0, 1)

    def test_bad_event_kind_rejected(self):
        with pytest.raises(GraphError):
            EdgeEvent(0.0, "sideways", 0, 1)

    def test_negative_event_time_rejected(self):
        with pytest.raises(GraphError):
            EdgeEvent(-1.0, "up", 0, 1)


class TestStructure:
    def test_connectivity(self, triangle):
        assert triangle.is_connected()
        graph = DynamicGraph(range(3))
        graph.add_edge(0, 1)
        assert not graph.is_connected()

    def test_adjacency_copy(self, triangle):
        adjacency = triangle.adjacency()
        adjacency[0].clear()
        assert triangle.symmetric_neighbors(0) == {1, 2}

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_copy_preserves_schedule(self):
        graph = DynamicGraph(range(2))
        graph.schedule_edge_up(3.0, 0, 1)
        clone = graph.copy()
        assert len(clone.pending_events()) == 2
        clone.pop_events_until(10.0)
        assert len(graph.pending_events()) == 2
