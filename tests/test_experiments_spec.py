"""Tests for repro.experiments.spec: serialisation and stable hashing."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments import ComponentSpec, ScenarioSpec, SpecError, scenario


def make_spec(**kwargs) -> ScenarioSpec:
    base = dict(
        label="test",
        topology=ComponentSpec("line", {"n": 5}),
        drift=ComponentSpec("two_group", {"swap_period": 10.0}),
        sim={"dt": 0.1, "duration": 5.0},
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


class TestComponentSpec:
    def test_coercion_from_name(self):
        spec = ScenarioSpec(topology="line")
        assert spec.topology == ComponentSpec("line")

    def test_coercion_from_tuple_and_mapping(self):
        from_tuple = ScenarioSpec(topology=("line", {"n": 4}))
        from_mapping = ScenarioSpec(topology={"name": "line", "args": {"n": 4}})
        assert from_tuple.topology == from_mapping.topology

    def test_empty_name_rejected(self):
        with pytest.raises(SpecError):
            ComponentSpec("")

    def test_with_args_merges(self):
        component = ComponentSpec("line", {"n": 4})
        assert component.with_args(n=8).args == {"n": 8}
        assert component.args == {"n": 4}

    def test_hashable(self):
        assert hash(ComponentSpec("line", {"n": 4})) == hash(
            ComponentSpec("line", {"n": 4})
        )


class TestSerialisation:
    def test_round_trip_preserves_equality_and_hash(self):
        spec = make_spec(initial_ramp_per_edge=1.5, notes={"bound": 3.0})
        payload = json.loads(json.dumps(spec.to_dict()))
        restored = ScenarioSpec.from_dict(payload)
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()

    def test_initial_logical_keys_survive_json(self):
        spec = make_spec(initial_logical={0: 0.0, 3: 2.5})
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored.initial_logical == {0: 0.0, 3: 2.5}

    def test_named_scenarios_round_trip(self):
        for name in ("line_scaling", "end_to_end_insertion", "grid_periodic_churn"):
            spec = scenario(name)
            restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert restored.content_hash() == spec.content_hash()

    def test_sim_must_not_smuggle_dedicated_fields(self):
        for forbidden in ("drift", "delay", "initial_logical", "params"):
            with pytest.raises(SpecError):
                make_spec(sim={forbidden: None})


class TestContentHash:
    def test_insensitive_to_dict_insertion_order(self):
        a = make_spec(sim={"dt": 0.1, "duration": 5.0})
        b = make_spec(sim={"duration": 5.0, "dt": 0.1})
        assert a.content_hash() == b.content_hash()

    def test_sensitive_to_values(self):
        assert make_spec().content_hash() != make_spec(label="other").content_hash()
        assert (
            make_spec().content_hash()
            != make_spec(topology=ComponentSpec("line", {"n": 6})).content_hash()
        )

    def test_int_and_float_args_hash_differently(self):
        a = make_spec(topology=ComponentSpec("line", {"n": 5}))
        b = make_spec(topology=ComponentSpec("line", {"n": 5.0}))
        assert a.content_hash() != b.content_hash()

    def test_base_seed_is_deterministic(self):
        assert make_spec().base_seed() == make_spec().base_seed()

    def test_stable_across_processes(self):
        """The cache key must be identical in a fresh interpreter."""
        spec = scenario("line_scaling", n=6, algorithm="MaxPropagation")
        code = (
            "import json, sys\n"
            "from repro.experiments import ScenarioSpec\n"
            "spec = ScenarioSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(spec.content_hash())\n"
        )
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", code, json.dumps(spec.to_dict())],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert result.stdout.strip() == spec.content_hash()


class TestUpdates:
    def test_with_sim_merges_without_mutating(self):
        spec = make_spec()
        shrunk = spec.with_sim(duration=1.0)
        assert shrunk.sim["duration"] == 1.0
        assert shrunk.sim["dt"] == 0.1
        assert spec.sim["duration"] == 5.0

    def test_with_label(self):
        assert make_spec().with_label("renamed").label == "renamed"
