"""Tests for repro.core.max_estimate."""

import pytest

from repro.core.max_estimate import MaxEstimateTracker


class TestMaxEstimateTracker:
    def test_initial_value(self):
        assert MaxEstimateTracker(0.01).value == 0.0
        assert MaxEstimateTracker(0.01, 5.0).value == 5.0

    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            MaxEstimateTracker(1.0)

    def test_rejects_negative_initial(self):
        with pytest.raises(ValueError):
            MaxEstimateTracker(0.01, -1.0)

    def test_tracks_own_logical_clock(self):
        tracker = MaxEstimateTracker(0.01)
        tracker.advance(hardware_value=0.0, logical_value=0.0)
        tracker.advance(hardware_value=1.0, logical_value=1.05)
        assert tracker.value == pytest.approx(1.05)

    def test_grows_conservatively_when_ahead(self):
        tracker = MaxEstimateTracker(0.01)
        tracker.observe_remote(10.0)
        tracker.advance(hardware_value=0.0, logical_value=0.0)
        tracker.advance(hardware_value=2.0, logical_value=1.0)
        expected = 10.0 + 2.0 * (1 - 0.01) / (1 + 0.01)
        assert tracker.value == pytest.approx(expected)

    def test_conservative_rate_below_one(self):
        assert MaxEstimateTracker(0.01).conservative_rate_factor < 1.0

    def test_never_below_own_logical(self):
        tracker = MaxEstimateTracker(0.01)
        tracker.advance(0.0, 0.0)
        tracker.advance(1.0, 5.0)
        assert tracker.value >= 5.0
        assert tracker.lag_behind(5.0) >= 0.0

    def test_observe_remote_only_increases(self):
        tracker = MaxEstimateTracker(0.01, 8.0)
        tracker.observe_remote(3.0)
        assert tracker.value == 8.0
        tracker.observe_remote(12.0)
        assert tracker.value == 12.0

    def test_observe_remote_rejects_negative(self):
        with pytest.raises(ValueError):
            MaxEstimateTracker(0.01).observe_remote(-1.0)

    def test_hardware_regression_rejected(self):
        tracker = MaxEstimateTracker(0.01)
        tracker.advance(5.0, 1.0)
        with pytest.raises(ValueError):
            tracker.advance(4.0, 1.0)

    def test_negative_clock_values_rejected(self):
        tracker = MaxEstimateTracker(0.01)
        with pytest.raises(ValueError):
            tracker.advance(-1.0, 0.0)
        with pytest.raises(ValueError):
            tracker.advance(0.0, -1.0)

    def test_condition_4_3_upper_bound_simulation(self):
        """M never exceeds the true maximum when updated per the rules."""
        rho = 0.01
        tracker = MaxEstimateTracker(rho)
        true_max = 0.0
        own_logical = 0.0
        own_hardware = 0.0
        tracker.advance(own_hardware, own_logical)
        for step in range(200):
            dt = 0.1
            # True maximum grows at least at rate 1 - rho.
            true_max += (1 - rho) * dt
            # This node runs slow and fast alternately, always behind the max.
            rate = (1 + rho) if step % 2 == 0 else (1 - rho)
            own_hardware += rate * dt
            own_logical = min(true_max, own_logical + rate * dt)
            tracker.advance(own_hardware, own_logical)
            if step % 17 == 0:
                # Occasionally hear a (valid) remote estimate of the maximum.
                tracker.observe_remote(true_max * 0.9)
            assert tracker.value <= true_max + 1e-9
            assert tracker.value >= own_logical - 1e-9
