"""Tests for repro.network.edge."""

import pytest

from repro.network.edge import DEFAULT_EDGE_PARAMS, EdgeKey, EdgeParams


class TestEdgeKey:
    def test_canonical_ordering(self):
        assert EdgeKey.of(3, 1) == EdgeKey.of(1, 3)
        key = EdgeKey.of(5, 2)
        assert (key.a, key.b) == (2, 5)

    def test_constructor_normalizes(self):
        key = EdgeKey(7, 2)
        assert (key.a, key.b) == (2, 7)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            EdgeKey.of(4, 4)
        with pytest.raises(ValueError):
            EdgeKey(4, 4)

    def test_other_endpoint(self):
        key = EdgeKey.of(1, 3)
        assert key.other(1) == 3
        assert key.other(3) == 1
        with pytest.raises(ValueError):
            key.other(2)

    def test_endpoints_and_iter(self):
        key = EdgeKey.of(9, 4)
        assert key.endpoints() == (4, 9)
        assert list(key) == [4, 9]

    def test_usable_as_dict_key(self):
        mapping = {EdgeKey.of(1, 2): "x"}
        assert mapping[EdgeKey.of(2, 1)] == "x"

    def test_ordering(self):
        assert EdgeKey.of(0, 1) < EdgeKey.of(0, 2) < EdgeKey.of(1, 2)


class TestEdgeParams:
    def test_defaults(self):
        assert DEFAULT_EDGE_PARAMS.epsilon == 1.0
        assert DEFAULT_EDGE_PARAMS.tau == 0.5
        assert DEFAULT_EDGE_PARAMS.delay == 2.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            EdgeParams(epsilon=-1.0)
        with pytest.raises(ValueError):
            EdgeParams(tau=-0.1)
        with pytest.raises(ValueError):
            EdgeParams(delay=-2.0)

    def test_scaled(self):
        scaled = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0).scaled(2.0)
        assert scaled.epsilon == 2.0
        assert scaled.tau == 1.0
        assert scaled.delay == 4.0

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            EdgeParams().scaled(0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_EDGE_PARAMS.epsilon = 5.0
