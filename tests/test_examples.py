"""Smoke tests: every example script runs to completion."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3
    assert (EXAMPLES_DIR / "quickstart.py").exists()


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_quickstart_reports_no_gradient_violations(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "gradient bound violations over the whole run: 0" in output
