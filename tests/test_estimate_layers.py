"""Tests for the oracle and broadcast estimate layers."""

import pytest

from repro.estimate.estimate_layer import EstimateLayerError
from repro.estimate.message_layer import BroadcastEstimateLayer
from repro.estimate.messages import ClockBroadcast
from repro.estimate.oracle_layer import OracleEstimateLayer
from repro.network import topology
from repro.network.edge import EdgeParams


@pytest.fixture
def graph():
    return topology.line(3, EdgeParams(epsilon=1.0, tau=0.5, delay=2.0))


class TestOracleLayer:
    def test_zero_strategy_exact(self, graph):
        clocks = {0: 10.0, 1: 12.0, 2: 9.0}
        layer = OracleEstimateLayer(graph, clocks.__getitem__, strategy="zero")
        assert layer.estimate(0, 1, 0.0) == 12.0

    def test_non_neighbor_returns_none(self, graph):
        clocks = {0: 10.0, 1: 12.0, 2: 9.0}
        layer = OracleEstimateLayer(graph, clocks.__getitem__)
        assert layer.estimate(0, 2, 0.0) is None

    def test_error_bound_matches_edge(self, graph):
        layer = OracleEstimateLayer(graph, lambda n: 0.0)
        assert layer.error_bound(0, 1) == 1.0

    def test_unknown_strategy_rejected(self, graph):
        with pytest.raises(EstimateLayerError):
            OracleEstimateLayer(graph, lambda n: 0.0, strategy="bogus")

    @pytest.mark.parametrize(
        "strategy", ["uniform", "underestimate", "overestimate", "toward_observer"]
    )
    def test_inequality_1_holds(self, graph, strategy):
        clocks = {0: 10.0, 1: 13.0, 2: 9.0}
        layer = OracleEstimateLayer(graph, clocks.__getitem__, strategy=strategy, seed=4)
        for observer, subject in [(0, 1), (1, 0), (1, 2), (2, 1)]:
            estimate = layer.estimate(observer, subject, 0.0)
            assert estimate is not None
            assert abs(estimate - clocks[subject]) <= layer.error_bound(observer, subject) + 1e-12

    def test_underestimate_is_below_truth(self, graph):
        clocks = {0: 10.0, 1: 13.0, 2: 9.0}
        layer = OracleEstimateLayer(graph, clocks.__getitem__, strategy="underestimate")
        assert layer.estimate(0, 1, 0.0) == pytest.approx(12.0)

    def test_overestimate_is_above_truth(self, graph):
        clocks = {0: 10.0, 1: 13.0, 2: 9.0}
        layer = OracleEstimateLayer(graph, clocks.__getitem__, strategy="overestimate")
        assert layer.estimate(0, 1, 0.0) == pytest.approx(14.0)

    def test_toward_observer_shrinks_apparent_skew(self, graph):
        clocks = {0: 10.0, 1: 13.0, 2: 9.0}
        layer = OracleEstimateLayer(graph, clocks.__getitem__, strategy="toward_observer")
        # Node 0 sees node 1 one unit closer than it really is.
        assert layer.estimate(0, 1, 0.0) == pytest.approx(12.0)
        # And never past the observer's own value when closer than epsilon.
        clocks[1] = 10.5
        assert layer.estimate(0, 1, 0.0) == pytest.approx(10.0)

    def test_error_scale_validated(self, graph):
        with pytest.raises(EstimateLayerError):
            OracleEstimateLayer(graph, lambda n: 0.0, error_scale=2.0)

    def test_estimates_never_negative(self, graph):
        clocks = {0: 0.0, 1: 0.2, 2: 0.0}
        layer = OracleEstimateLayer(graph, clocks.__getitem__, strategy="underestimate")
        assert layer.estimate(0, 1, 0.0) >= 0.0


class TestBroadcastLayer:
    def _layer(self, graph, hardware):
        return BroadcastEstimateLayer(
            graph, hardware.__getitem__, broadcast_interval=1.0, rho=0.01, mu=0.1
        )

    def test_no_estimate_before_any_broadcast(self, graph):
        layer = self._layer(graph, {0: 0.0, 1: 0.0, 2: 0.0})
        assert layer.estimate(0, 1, 0.0) is None

    def test_estimate_extrapolates_with_observer_hardware(self, graph):
        hardware = {0: 5.0, 1: 5.0, 2: 5.0}
        layer = self._layer(graph, hardware)
        broadcast = ClockBroadcast(sender=1, logical=20.0, max_estimate=20.0)
        layer.on_broadcast(0, broadcast, t=5.0, transit_time=0.5)
        assert layer.estimate(0, 1, 5.0) == pytest.approx(20.0)
        hardware[0] = 7.0
        assert layer.estimate(0, 1, 7.0) == pytest.approx(22.0)

    def test_staleness_tracked(self, graph):
        hardware = {0: 5.0, 1: 5.0, 2: 5.0}
        layer = self._layer(graph, hardware)
        layer.on_broadcast(0, ClockBroadcast(sender=1, logical=20.0, max_estimate=20.0), 5.0, 0.5)
        assert layer.staleness(0, 1, 8.0) == pytest.approx(3.0)
        assert layer.staleness(0, 2, 8.0) is None

    def test_forget_clears_estimate(self, graph):
        hardware = {0: 5.0, 1: 5.0, 2: 5.0}
        layer = self._layer(graph, hardware)
        layer.on_broadcast(0, ClockBroadcast(sender=1, logical=20.0, max_estimate=20.0), 5.0, 0.5)
        layer.forget(0, 1)
        assert layer.estimate(0, 1, 5.0) is None

    def test_error_bound_components(self, graph):
        layer = self._layer(graph, {0: 0.0, 1: 0.0, 2: 0.0})
        bound = layer.error_bound(0, 1)
        edge = graph.edge_params(0, 1)
        transit = (1 + 0.01) * (1 + 0.1) * edge.delay
        staleness = 1.0 / (1 - 0.01) + edge.delay
        drift = (0.1 * 1.01 + 0.02) * staleness
        assert bound == pytest.approx(transit + drift)

    def test_requires_broadcasts_flag(self, graph):
        layer = self._layer(graph, {0: 0.0, 1: 0.0, 2: 0.0})
        assert layer.requires_broadcasts()
        oracle = OracleEstimateLayer(graph, lambda n: 0.0)
        assert not oracle.requires_broadcasts()

    def test_invalid_configuration_rejected(self, graph):
        with pytest.raises(EstimateLayerError):
            BroadcastEstimateLayer(graph, lambda n: 0.0, broadcast_interval=0.0, rho=0.01, mu=0.1)
        with pytest.raises(EstimateLayerError):
            BroadcastEstimateLayer(graph, lambda n: 0.0, broadcast_interval=1.0, rho=2.0, mu=0.1)
        with pytest.raises(EstimateLayerError):
            BroadcastEstimateLayer(graph, lambda n: 0.0, broadcast_interval=1.0, rho=0.01, mu=-0.1)
