"""E6 -- Effect of the rate boost ``mu`` (the base ``sigma`` of the gradient).

The gradient bound's logarithm base is ``sigma = (1 - rho) mu / (2 rho)``
(equation (8)): a larger ``mu`` yields a larger base, hence a smaller gradient
bound and a faster self-stabilization rate ``mu(1-rho) - 2rho``.  The sweep
runs the E5-style recovery scenario for several values of ``mu`` and verifies
that the measured drain rate and the analytic bounds move as predicted.
"""

import pytest

from repro.analysis import report, stabilization
from repro.core.algorithm import aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.parameters import Parameters
from repro.network import topology
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

from common import BENCH_EDGE, emit

N_NODES = 12
RHO = 0.005
MU_VALUES = (0.04, 0.07, 0.1)


def run_with_mu(mu: float):
    params = Parameters(rho=RHO, mu=mu)
    params.validate(strict_sigma=True)
    graph = topology.line(N_NODES, BENCH_EDGE)
    kappa = params.kappa_for(BENCH_EDGE.epsilon, BENCH_EDGE.tau)
    corrupted = 0.9 * kappa * (N_NODES - 1)
    initial = {i: corrupted * i / (N_NODES - 1) for i in range(N_NODES)}
    fast, slow = half_split(graph.nodes)
    duration = 80.0 + 1.2 * corrupted / params.self_stabilization_rate
    config = SimulationConfig(
        params=params,
        dt=0.1,
        duration=duration,
        sample_interval=1.0,
        drift=TwoGroupAdversary(RHO, fast, slow),
        estimate_strategy="toward_observer",
        initial_logical=initial,
    )
    aopt_config = default_aopt_config(
        graph,
        config,
        global_skew_bound=1.1 * corrupted,
        insertion_duration=insertion_mod.scaled_insertion_duration(0.02),
    )
    result = run_simulation(graph, aopt_factory(aopt_config), config)
    window = 0.5 * corrupted / params.self_stabilization_rate
    return {
        "mu": mu,
        "sigma": params.sigma,
        "guaranteed_rate": params.self_stabilization_rate,
        "measured_rate": stabilization.decrease_rate(result.trace, start=0.0, end=window),
        "gradient_bound": params.local_skew_bound(kappa, 1.1 * corrupted),
        "final_skew": result.trace.final().global_skew(),
    }


def collect_rows():
    return [run_with_mu(mu) for mu in MU_VALUES]


def test_e6_mu_sweep(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table = report.Table(
        f"E6: effect of mu on a line of {N_NODES} nodes (rho = {RHO})",
        [
            "mu",
            "sigma",
            "guaranteed drain rate",
            "measured drain rate",
            "single-edge gradient bound",
            "final global skew",
        ],
    )
    for row in rows:
        table.add_row(
            row["mu"],
            row["sigma"],
            row["guaranteed_rate"],
            row["measured_rate"],
            row["gradient_bound"],
            row["final_skew"],
        )
    emit(table, "e6_mu_sweep.txt")

    # sigma and the guaranteed drain rate grow with mu.
    sigmas = [row["sigma"] for row in rows]
    rates = [row["guaranteed_rate"] for row in rows]
    assert sigmas == sorted(sigmas)
    assert rates == sorted(rates)
    # The measured drain rate follows the guaranteed one.
    measured = [row["measured_rate"] for row in rows]
    assert all(m is not None and m >= 0.7 * g for m, g in zip(measured, rates))
    assert measured[-1] > measured[0]
    # The gradient bound shrinks overall as mu (and hence sigma) grows.  The
    # ceiling in the level computation makes it non-monotone step by step, so
    # only the end points of the sweep are compared.
    bounds = [row["gradient_bound"] for row in rows]
    assert bounds[-1] <= bounds[0]
