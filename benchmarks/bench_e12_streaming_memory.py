"""E12: streaming-observer memory benchmark (writes BENCH_metrics.json).

Demonstrates the memory claim of the streaming metrics pipeline on the vec
backend: a ``trace: none`` run keeps no per-sample state, so its peak memory
is (a) essentially flat in the run duration and (b) a large factor below the
same run with a full trace.  Two modes:

* default -- regenerate ``BENCH_metrics.json``: timed ``trace: none`` vec
  grid points (compatible with the ``repro-experiments bench --compare``
  regression gate), the n=4096 full-vs-none peak-memory comparison at 10x
  the default bench duration, and duration-scaling evidence;
* ``--check`` -- the CI memory smoke: assert the flat-in-duration and
  >= 5x-below-full properties plus an absolute peak budget, exiting nonzero
  on violation.

Peaks are tracemalloc peaks of one full build + run (see
``repro.experiments.bench``); the process RSS high-water mark is recorded
alongside for reference.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import bench as bench_mod

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_metrics.json"

#: 20x the default bench duration (the acceptance scenario asks for >= 10x).
LONG_DURATION = 400.0
SHORT_DURATION = 100.0
DT = 0.1
N = 4096

#: Absolute peak budget for the trace-none run at n=4096, LONG_DURATION.
PEAK_BUDGET_BYTES = 128 * 1024 * 1024
#: trace: none peak may grow at most this much from SHORT to LONG duration.
DURATION_SCALING_LIMIT = 2.0
#: trace: full must need at least this multiple of the trace-none peak.
FULL_OVER_NONE_MINIMUM = 5.0


def measure(n: int, duration: float, trace: str) -> dict:
    """One vec grid point: timing + tracemalloc peak."""
    payload = bench_mod.run_backend_bench(
        sizes=[n],
        topologies=["line"],
        duration=duration,
        dt=DT,
        backends=["vec"],
        check_equivalence=False,
        trace=trace,
        measure_memory=True,
    )
    return payload["results"][0]


def cmd_generate() -> int:
    timed = bench_mod.run_backend_bench(
        sizes=[1024, N],
        topologies=["line"],
        duration=LONG_DURATION,
        dt=DT,
        backends=["vec"],
        check_equivalence=False,
        trace="none",
        measure_memory=True,
    )
    none_short = measure(N, SHORT_DURATION, "none")
    full_long = measure(N, LONG_DURATION, "full")
    none_long = next(entry for entry in timed["results"] if entry["n"] == N)
    ratio = (
        full_long["vec_peak_tracemalloc_bytes"]
        / none_long["vec_peak_tracemalloc_bytes"]
    )
    payload = {
        "benchmark": "streaming_metrics_memory",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": {
            "backend": "vec",
            "topology": "line",
            "dt": DT,
            "long_duration": LONG_DURATION,
            "short_duration": SHORT_DURATION,
            "peak_budget_bytes": PEAK_BUDGET_BYTES,
        },
        #: Timed trace-none grid points, in the backend-bench results format
        #: so `repro-experiments bench --trace none --compare` gates on them.
        "results": timed["results"],
        "memory_comparison": {
            "n": N,
            "duration": LONG_DURATION,
            "trace_none_peak_bytes": none_long["vec_peak_tracemalloc_bytes"],
            "trace_full_peak_bytes": full_long["vec_peak_tracemalloc_bytes"],
            "full_over_none_ratio": ratio,
        },
        "duration_scaling": {
            "n": N,
            "trace": "none",
            "short_duration": SHORT_DURATION,
            "short_peak_bytes": none_short["vec_peak_tracemalloc_bytes"],
            "long_duration": LONG_DURATION,
            "long_peak_bytes": none_long["vec_peak_tracemalloc_bytes"],
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"n={N}: trace none {none_long['vec_peak_tracemalloc_bytes'] / 1e6:.1f} MB "
        f"vs trace full {full_long['vec_peak_tracemalloc_bytes'] / 1e6:.1f} MB "
        f"({ratio:.1f}x)"
    )
    return 0


def cmd_check() -> int:
    """CI memory smoke: fail when the streaming memory contract breaks."""
    none_short = measure(N, SHORT_DURATION, "none")
    none_long = measure(N, LONG_DURATION, "none")
    full_long = measure(N, LONG_DURATION, "full")
    short_peak = none_short["vec_peak_tracemalloc_bytes"]
    long_peak = none_long["vec_peak_tracemalloc_bytes"]
    full_peak = full_long["vec_peak_tracemalloc_bytes"]
    print(
        f"trace none n={N}: duration {SHORT_DURATION} -> {short_peak / 1e6:.1f} MB, "
        f"duration {LONG_DURATION} -> {long_peak / 1e6:.1f} MB "
        f"(rss high-water {none_long.get('peak_rss_kb')} kB)"
    )
    print(f"trace full n={N}, duration {LONG_DURATION}: {full_peak / 1e6:.1f} MB")
    failures = []
    if long_peak > PEAK_BUDGET_BYTES:
        failures.append(
            f"trace-none peak {long_peak / 1e6:.1f} MB exceeds the "
            f"{PEAK_BUDGET_BYTES / 1e6:.0f} MB budget"
        )
    if long_peak > short_peak * DURATION_SCALING_LIMIT:
        failures.append(
            f"trace-none peak scales with duration: {short_peak / 1e6:.1f} MB "
            f"-> {long_peak / 1e6:.1f} MB over a 4x longer run "
            f"(limit {DURATION_SCALING_LIMIT}x)"
        )
    if full_peak < FULL_OVER_NONE_MINIMUM * long_peak:
        failures.append(
            f"trace-none is only {full_peak / max(long_peak, 1):.1f}x below "
            f"trace-full (need >= {FULL_OVER_NONE_MINIMUM}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"memory smoke OK: flat in duration, "
            f"{full_peak / long_peak:.1f}x below trace-full"
        )
    return 1 if failures else 0


def test_e12_streaming_memory():
    """Pytest smoke (scaled down): flat-in-duration and below-full-trace.

    The full acceptance bars (n = 4096, >= 5x, absolute budget) are asserted
    by ``--check`` in CI and recorded in ``BENCH_metrics.json``; this keeps
    the ``pytest benchmarks/`` invocation affordable.
    """
    import pytest

    pytest.importorskip("numpy")
    small_n = 512
    short = bench_mod.run_backend_bench(
        sizes=[small_n], topologies=["line"], duration=50.0, dt=DT,
        backends=["vec"], check_equivalence=False, trace="none",
        measure_memory=True,
    )["results"][0]
    long = bench_mod.run_backend_bench(
        sizes=[small_n], topologies=["line"], duration=200.0, dt=DT,
        backends=["vec"], check_equivalence=False, trace="none",
        measure_memory=True,
    )["results"][0]
    full = bench_mod.run_backend_bench(
        sizes=[small_n], topologies=["line"], duration=200.0, dt=DT,
        backends=["vec"], check_equivalence=False, trace="full",
        measure_memory=True,
    )["results"][0]
    short_peak = short["vec_peak_tracemalloc_bytes"]
    long_peak = long["vec_peak_tracemalloc_bytes"]
    full_peak = full["vec_peak_tracemalloc_bytes"]
    assert long_peak <= short_peak * DURATION_SCALING_LIMIT, (short_peak, long_peak)
    assert full_peak > long_peak * 2.0, (full_peak, long_peak)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the memory contract instead of regenerating the JSON",
    )
    args = parser.parse_args(argv)
    return cmd_check() if args.check else cmd_generate()


if __name__ == "__main__":
    sys.exit(main())
