"""E4 -- Stabilization time of newly inserted edges is Theta(D)
(Theorem 5.25, matching the lower bound of Theorem 8.1).

A line pre-loaded with a ramp of skew proportional to its diameter gets a new
edge between its endpoints.  For AOPT the time until the new edge's skew drops
below (and stays below) ``2 * kappa`` is measured; it is dominated by the
insertion schedule of length ``Theta(G~ / mu) = Theta(D)`` and therefore grows
linearly with the line length.  The immediate-insertion variant (Section 5.5)
and the max-propagation baseline are reported for contrast: max propagation
"stabilizes" the new edge almost instantly, but only by dumping the whole
end-to-end skew onto the old edges next to the endpoints.
"""

import pytest

from repro.analysis import report

from common import INSERTION_SIZES, emit, insertion_run

ALGORITHMS = ("AOPT", "ImmediateInsertion", "MaxPropagation")


def measure(n, algorithm):
    # The RunSummary already measures the new edge against the 2*kappa
    # criterion and the old (pre-insertion) edges from the event onwards.
    run, meta = insertion_run(n, algorithm)
    summary = run.summary
    return {
        "stabilization": (
            summary.stabilization_time if summary.stabilized else float("nan")
        ),
        "skew_at_insertion": summary.skew_at_event,
        "old_edge_skew": summary.post_event_local_skew,
        "insertion_span": meta["insertion_span"],
    }


def collect_rows():
    rows = []
    for n in INSERTION_SIZES:
        row = {"n": n}
        for algorithm in ALGORITHMS:
            row[algorithm] = measure(n, algorithm)
        rows.append(row)
    return rows


def test_e4_stabilization_time(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table = report.Table(
        "E4: time for a new end-to-end edge to reach skew <= 2*kappa",
        [
            "n",
            "skew at insertion",
            "AOPT stabilization",
            "AOPT insertion span Theta(G/mu)",
            "Immediate stabilization",
            "MaxProp stabilization",
            "AOPT old-edge skew",
            "MaxProp old-edge skew",
        ],
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["AOPT"]["skew_at_insertion"],
            row["AOPT"]["stabilization"],
            row["AOPT"]["insertion_span"],
            row["ImmediateInsertion"]["stabilization"],
            row["MaxPropagation"]["stabilization"],
            row["AOPT"]["old_edge_skew"],
            row["MaxPropagation"]["old_edge_skew"],
        )
    emit(table, "e4_stabilization_time.txt")

    aopt_times = [row["AOPT"]["stabilization"] for row in rows]
    # Every AOPT run stabilizes within the simulated horizon.
    assert all(t == t for t in aopt_times)
    # The stabilization time grows with the diameter (Theta(D) behaviour):
    # the new edge carries Theta(D) skew when it appears, and AOPT only
    # reduces skew at rate Theta(mu), never by jumping.
    assert all(a < b for a, b in zip(aopt_times, aopt_times[1:]))
    assert aopt_times[-1] > 1.5 * aopt_times[0]
    # The skew at insertion indeed grows linearly with the diameter.
    insertion_skews = [row["AOPT"]["skew_at_insertion"] for row in rows]
    assert insertion_skews[-1] > 2.0 * insertion_skews[0]
    # Max propagation (which may jump) resolves the new edge faster than AOPT;
    # its worst-case price -- Theta(D) skew dumped on an old edge -- is
    # exhibited separately in E2, where the jump happens while skew is present.
    assert all(
        row["MaxPropagation"]["stabilization"] <= row["AOPT"]["stabilization"]
        for row in rows
    )
    # AOPT never exceeds its single-edge gradient bound on the old edges while
    # the new edge is being inserted.
    for row, n in zip(rows, INSERTION_SIZES):
        _, meta = insertion_run(n, "AOPT")
        from common import local_skew_bound

        assert row["AOPT"]["old_edge_skew"] <= local_skew_bound(
            meta["global_skew_bound"]
        )
