"""Shared scenario runners for the benchmark harness.

All experiments of EXPERIMENTS.md are driven through the helpers in this
module, which since the introduction of :mod:`repro.experiments` are thin
wrappers over the declarative subsystem: the E1--E4 sweeps are the named
scenarios ``line_scaling`` and ``end_to_end_insertion`` of the registry, and
runs go through an :class:`~repro.experiments.executor.ExperimentRunner`
whose on-disk cache lives under ``benchmarks/results/cache/``.  Repeated
sweeps (within a session *or* across sessions) are therefore free, and the
in-process memoisation only retains the compact
:class:`~repro.experiments.results.RunSummary` plus the trace -- not the
engine -- so long benchmark sessions no longer hold every finished simulation
alive.

Every benchmark writes its table both to stdout (captured by pytest) and to
``benchmarks/results/<experiment>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Dict, Tuple

from repro.analysis import report, skew
from repro.core import insertion as insertion_mod
from repro.core.parameters import Parameters
from repro.core.skew_estimates import suggest_global_skew_bound
from repro.experiments import ExperimentRun, ExperimentRunner, scenario
from repro.experiments.registry import (
    BENCHMARK_EDGE,
    BENCHMARK_INSERTION_SCALE,
    BENCHMARK_PARAMS,
)
from repro.network import topology
from repro.network.edge import EdgeParams

RESULTS_DIR = Path(__file__).resolve().parent / "results"
CACHE_DIR = RESULTS_DIR / "cache"

#: Parameters used by the scaling experiments: sigma = (1-rho)*mu/(2*rho) = 3.28.
#: The canonical values live in :mod:`repro.experiments.registry` so scripts
#: and declarative scenarios can never drift apart.
BENCH_PARAMS = Parameters(**BENCHMARK_PARAMS)
BENCH_EDGE = EdgeParams(**BENCHMARK_EDGE)

#: Constant-factor reduction of the insertion duration of equation (10) used
#: by the simulation experiments; the Theta(G/mu) scaling is preserved
#: (EXPERIMENTS.md documents this substitution).
INSERTION_SCALE = BENCHMARK_INSERTION_SCALE
FAST_INSERTION = insertion_mod.scaled_insertion_duration(INSERTION_SCALE)

#: Line lengths used by the scaling sweeps (E1/E2/E3).
LINE_SIZES = (4, 8, 16, 24)

#: Line lengths used by the stabilization sweep (E4).
INSERTION_SIZES = (6, 10, 14)

#: Shared runner: serial (benchmarks interleave analysis with runs) but
#: cache-backed, so re-running an experiment re-uses previous sweeps.
_RUNNER = ExperimentRunner(CACHE_DIR)


def emit(table: report.Table, filename: str) -> None:
    """Print a result table and persist it under ``benchmarks/results``."""
    text = table.render()
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")


def kappa_default(params: Parameters = BENCH_PARAMS) -> float:
    """The edge weight kappa of the benchmark edge parameters."""
    return params.kappa_for(BENCH_EDGE.epsilon, BENCH_EDGE.tau)


def local_skew_bound(global_bound: float, params: Parameters = BENCH_PARAMS) -> float:
    """Gradient bound on a single default edge."""
    return params.local_skew_bound(kappa_default(params), global_bound)


def ramp_initial_profile(n: int, per_edge: float) -> Dict[int, float]:
    """Adversarially pre-built skew: a ramp with ``per_edge`` skew per hop."""
    return {i: per_edge * i for i in range(n)}


def global_skew_bound_for_line(n: int) -> float:
    """The static bound G~ handed to AOPT for a line of ``n`` nodes."""
    graph = topology.line(n, BENCH_EDGE)
    return suggest_global_skew_bound(graph, BENCH_PARAMS)


@functools.lru_cache(maxsize=None)
def line_scaling_run(n: int, algorithm: str) -> Tuple[ExperimentRun, float]:
    """One run of the E1/E2/E3 sweep (the ``line_scaling`` scenario).

    A line of ``n`` nodes starts from an adversarially pre-built ramp (about
    one ``kappa`` of skew per edge) and is driven by a periodically swapping
    two-group drift adversary.  Returns the run (summary + trace, no engine)
    and the global skew bound used by AOPT.
    """
    run = _RUNNER.run(scenario("line_scaling", n=n, algorithm=algorithm))
    return run, run.meta["reference_global_skew_bound"]


@functools.lru_cache(maxsize=None)
def insertion_run(n: int, algorithm: str) -> Tuple[ExperimentRun, dict]:
    """One run of the E4 sweep (the ``end_to_end_insertion`` scenario).

    The line starts from the pre-built ramp, so the two endpoints of the new
    edge carry skew proportional to the diameter when the edge appears.
    """
    run = _RUNNER.run(scenario("end_to_end_insertion", n=n, algorithm=algorithm))
    meta = {
        key: run.meta[key]
        for key in (
            "new_edge",
            "insertion_time",
            "global_skew_bound",
            "insertion_span",
            "duration",
        )
    }
    return run, meta
