"""Shared scenario runners for the benchmark harness.

All experiments of EXPERIMENTS.md are driven through the helpers in this
module.  Heavy simulation runs are cached (keyed by their scenario
parameters) so that experiments sharing a sweep (E1/E2/E3 and the two halves
of E4) only pay for it once within a benchmark session.

Every benchmark writes its table both to stdout (captured by pytest) and to
``benchmarks/results/<experiment>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

import functools
import math
from pathlib import Path
from typing import Dict, Tuple

from repro.analysis import report, skew
from repro.baselines.hardware_only import hardware_only_factory
from repro.baselines.immediate_insertion import immediate_insertion_factory
from repro.baselines.max_algorithm import max_propagation_factory
from repro.baselines.threshold_gradient import threshold_gradient_factory
from repro.core.algorithm import aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.parameters import Parameters
from repro.core.skew_estimates import suggest_global_skew_bound
from repro.network import dynamics, topology
from repro.network.edge import EdgeParams
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import (
    SimulationConfig,
    SimulationResult,
    default_aopt_config,
    run_simulation,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Parameters used by the scaling experiments: sigma = (1-rho)*mu/(2*rho) = 3.28.
BENCH_PARAMS = Parameters(rho=0.015, mu=0.1)
BENCH_EDGE = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)

#: Constant-factor reduction of the insertion duration of equation (10) used
#: by the simulation experiments; the Theta(G/mu) scaling is preserved
#: (EXPERIMENTS.md documents this substitution).
INSERTION_SCALE = 0.02
FAST_INSERTION = insertion_mod.scaled_insertion_duration(INSERTION_SCALE)

#: Line lengths used by the scaling sweeps (E1/E2/E3).
LINE_SIZES = (4, 8, 16, 24)

#: Line lengths used by the stabilization sweep (E4).
INSERTION_SIZES = (6, 10, 14)


def emit(table: report.Table, filename: str) -> None:
    """Print a result table and persist it under ``benchmarks/results``."""
    text = table.render()
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")


def kappa_default(params: Parameters = BENCH_PARAMS) -> float:
    """The edge weight kappa of the benchmark edge parameters."""
    return params.kappa_for(BENCH_EDGE.epsilon, BENCH_EDGE.tau)


def local_skew_bound(global_bound: float, params: Parameters = BENCH_PARAMS) -> float:
    """Gradient bound on a single default edge."""
    return params.local_skew_bound(kappa_default(params), global_bound)


def ramp_initial_profile(n: int, per_edge: float) -> Dict[int, float]:
    """Adversarially pre-built skew: a ramp with ``per_edge`` skew per hop."""
    return {i: per_edge * i for i in range(n)}


def global_skew_bound_for_line(n: int) -> float:
    """The static bound G~ handed to AOPT for a line of ``n`` nodes."""
    graph = topology.line(n, BENCH_EDGE)
    return suggest_global_skew_bound(graph, BENCH_PARAMS)


def _line_factory(algorithm: str, graph, config, bound):
    if algorithm == "AOPT":
        return aopt_factory(
            default_aopt_config(
                graph, config, global_skew_bound=bound, insertion_duration=FAST_INSERTION
            )
        )
    if algorithm == "MaxPropagation":
        return max_propagation_factory(BENCH_PARAMS.rho)
    if algorithm == "ThresholdGradient":
        # The single-level rule needs a Theta(sqrt(D))-sized threshold for its
        # own global-skew argument (Locher & Wattenhofer); that threshold is
        # exactly what its local skew degrades to.
        threshold = kappa_default() * math.sqrt(graph.node_count) / 2.0
        return threshold_gradient_factory(BENCH_PARAMS, threshold, blocking=True)
    if algorithm == "HardwareOnly":
        return hardware_only_factory()
    raise ValueError(f"unknown algorithm {algorithm!r}")


@functools.lru_cache(maxsize=None)
def line_scaling_run(n: int, algorithm: str) -> Tuple[SimulationResult, float]:
    """One run of the E1/E2/E3 sweep.

    A line of ``n`` nodes starts from an adversarially pre-built ramp (about
    one ``kappa`` of skew per edge) and is driven by a periodically swapping
    two-group drift adversary.  Returns the simulation result and the global
    skew bound used by AOPT.
    """
    graph = topology.line(n, BENCH_EDGE)
    bound = global_skew_bound_for_line(n)
    lower_half, upper_half = half_split(graph.nodes)
    duration = 100.0 + 60.0 * n
    config = SimulationConfig(
        params=BENCH_PARAMS,
        dt=0.1,
        duration=duration,
        sample_interval=1.0,
        drift=TwoGroupAdversary(
            BENCH_PARAMS.rho, upper_half, lower_half, swap_period=150.0
        ),
        estimate_strategy="toward_observer",
        initial_logical=ramp_initial_profile(n, 0.95 * kappa_default()),
    )
    factory = _line_factory(algorithm, graph, config, bound)
    result = run_simulation(graph, factory, config)
    return result, bound


def steady_window_start(result: SimulationResult, fraction: float = 0.25) -> float:
    """Start of the steady-state measurement window (last ``fraction`` of the run)."""
    return skew.steady_state_window(result.trace, fraction=fraction)[0]


@functools.lru_cache(maxsize=None)
def insertion_run(n: int, algorithm: str) -> Tuple[SimulationResult, dict]:
    """One run of the E4 sweep: a line whose endpoints become adjacent.

    The line starts from the pre-built ramp, so the two endpoints of the new
    edge carry skew proportional to the diameter when the edge appears.
    """
    insertion_time = 30.0
    scenario = dynamics.line_with_end_to_end_insertion(
        n, insertion_time=insertion_time, params=BENCH_EDGE
    )
    initial_ramp = 0.95 * kappa_default()
    # The bound handed to the algorithm must dominate the pre-built skew
    # (assumption (6) of the paper).
    bound = max(global_skew_bound_for_line(n), 1.1 * initial_ramp * (n - 1))
    lower_half, upper_half = half_split(scenario.graph.nodes)
    insertion_span = INSERTION_SCALE * BENCH_PARAMS.insertion_duration(bound)
    duration = insertion_time + 2.4 * insertion_span + 120.0
    config = SimulationConfig(
        params=BENCH_PARAMS,
        dt=0.1,
        duration=duration,
        sample_interval=1.0,
        drift=TwoGroupAdversary(BENCH_PARAMS.rho, upper_half, lower_half),
        estimate_strategy="toward_observer",
        initial_logical=ramp_initial_profile(n, initial_ramp),
    )
    aopt_config = default_aopt_config(
        scenario.graph,
        config,
        global_skew_bound=bound,
        insertion_duration=FAST_INSERTION,
        immediate_insertion=(algorithm == "ImmediateInsertion"),
    )
    if algorithm == "AOPT":
        factory = aopt_factory(aopt_config)
    elif algorithm == "ImmediateInsertion":
        factory = immediate_insertion_factory(aopt_config)
    elif algorithm == "MaxPropagation":
        factory = max_propagation_factory(BENCH_PARAMS.rho)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    result = run_simulation(scenario.graph, factory, config)
    meta = {
        "new_edge": scenario.new_edge,
        "insertion_time": insertion_time,
        "global_skew_bound": bound,
        "insertion_span": insertion_span,
        "duration": duration,
    }
    return result, meta
