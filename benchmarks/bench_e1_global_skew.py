"""E1 -- Global skew: containment and Theta(D) convergence (Theorem 5.6).

For lines of increasing length, AOPT starts from an adversarially pre-built
ramp of roughly ``kappa`` skew per edge (total skew proportional to the
diameter) and keeps fighting a two-group drift adversary.  The experiment
verifies three facets of Theorem 5.6:

* the global skew never exceeds the static bound ``G~`` the algorithm was
  configured with (linear in the diameter);
* the excessive initial skew is drained, so the final skew is far below the
  initial one;
* the time needed to halve the initial skew grows linearly with the diameter
  (the drain rate is a constant ``mu(1-rho) - 2rho``, the amount is
  ``Theta(D)``).
"""

import pytest

from repro.analysis import report
from repro.lower_bounds import analytic

from common import (
    BENCH_EDGE,
    LINE_SIZES,
    emit,
    kappa_default,
    line_scaling_run,
)


def collect_rows():
    rows = []
    for n in LINE_SIZES:
        run, bound = line_scaling_run(n, "AOPT")
        summary = run.summary
        lower = analytic.global_skew_lower_bound([BENCH_EDGE.epsilon] * (n - 1))
        rows.append(
            {
                "n": n,
                "lower": lower,
                "initial": summary.initial_global_skew,
                "max": summary.max_global_skew,
                "final": summary.final_global_skew,
                "bound": bound,
                "halving_time": (
                    summary.halving_time
                    if summary.halving_time is not None
                    else float("nan")
                ),
            }
        )
    return rows


def test_e1_global_skew_vs_diameter(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table = report.Table(
        "E1: global skew on lines under adversarial drift (AOPT)",
        [
            "n",
            "Omega(D) ref (sum eps/2)",
            "initial skew",
            "max skew",
            "final skew",
            "G~ bound",
            "time to halve initial skew",
        ],
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["lower"],
            row["initial"],
            row["max"],
            row["final"],
            row["bound"],
            row["halving_time"],
        )
    emit(table, "e1_global_skew.txt")

    # Containment: the skew never exceeds the configured bound.
    assert all(row["max"] <= row["bound"] + 1e-6 for row in rows)
    # Drainage: the excessive initial skew is reduced substantially.
    assert all(row["final"] <= 0.5 * row["initial"] + kappa_default() for row in rows)
    # Theta(D) convergence: the halving time grows with the line length.
    times = [row["halving_time"] for row in rows]
    assert all(t == t for t in times), "every run must reach half its initial skew"
    assert times[-1] > 1.5 * times[0]
    assert all(a <= b + 30.0 for a, b in zip(times, times[1:]))
