"""E10 -- Safety invariants over a randomized dynamic run.

One randomized churn scenario is simulated and every recorded sample is
checked against the paper's safety properties:

* the fast and slow mode *conditions* never conflict (Lemma 5.3 / Lemma 5.2);
* max estimates never exceed the true maximum (Condition 4.3, inequality (2));
* the gradient bound of Corollary 5.26 holds on the always-present backbone;
* logical clock rates stay inside ``[1 - rho, (1 + rho)(1 + mu)]``;
* every node's neighbor levels form the subset chain of Lemma 5.1.

The benchmark reports the number of violations for each property; all of them
must be zero.
"""

import pytest

from repro.analysis import gradient, report, skew
from repro.core.algorithm import aopt_factory
from repro.core.conditions import TrueNeighborState, conditions_conflict
from repro.network import dynamics, topology
from repro.sim.drift import RandomWalkDrift
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

from common import BENCH_EDGE, BENCH_PARAMS, FAST_INSERTION, emit

N_NODES = 10


def run_and_check():
    base = topology.line(N_NODES, BENCH_EDGE)
    graph = dynamics.periodic_churn(
        base,
        [(0, 4), (2, 7), (5, 9)],
        period=25.0,
        horizon=250.0,
        params=BENCH_EDGE,
        seed=13,
    )
    config = SimulationConfig(
        params=BENCH_PARAMS,
        dt=0.1,
        duration=300.0,
        sample_interval=1.0,
        drift=RandomWalkDrift(BENCH_PARAMS.rho, graph.nodes, period=15.0, seed=5),
        estimate_strategy="uniform",
        estimate_seed=17,
    )
    aopt_config = default_aopt_config(graph, config, insertion_duration=FAST_INSERTION)
    result = run_simulation(graph, aopt_factory(aopt_config), config)

    kappa = BENCH_PARAMS.kappa_for(BENCH_EDGE.epsilon, BENCH_EDGE.tau)
    delta = BENCH_PARAMS.delta_for(kappa, BENCH_EDGE.epsilon, BENCH_EDGE.tau)
    backbone = [(i, i + 1) for i in range(N_NODES - 1)]

    condition_conflicts = 0
    max_estimate_violations = 0
    rate_violations = 0
    previous = None
    for sample in result.trace:
        max_estimate_violations += skew.max_estimate_violations(sample)
        for node in range(N_NODES):
            states = [
                TrueNeighborState(
                    neighbor=other,
                    logical=sample.logical[other],
                    kappa=kappa,
                    tau=BENCH_EDGE.tau,
                    level=aopt_config.max_level,
                )
                for other in range(N_NODES)
                if (node, other) in [(u, v) for u, v in backbone]
                or (other, node) in [(u, v) for u, v in backbone]
            ]
            if conditions_conflict(
                sample.logical[node], states, BENCH_PARAMS, aopt_config.max_level, delta
            ):
                condition_conflicts += 1
        if previous is not None:
            dt = sample.time - previous.time
            if dt > 0:
                for node in range(N_NODES):
                    rate = (sample.logical[node] - previous.logical[node]) / dt
                    if rate < BENCH_PARAMS.alpha - 1e-6 or rate > BENCH_PARAMS.beta + 1e-6:
                        rate_violations += 1
        previous = sample

    gradient_violations = len(
        gradient.check_trace(
            result.trace, base, aopt_config.global_skew.value(0.0), BENCH_PARAMS
        )
    )
    broken_chains = sum(
        0 if result.engine.algorithm(node).levels.subset_chain_holds() else 1
        for node in result.engine.nodes
    )
    return {
        "samples": len(result.trace),
        "condition_conflicts": condition_conflicts,
        "max_estimate_violations": max_estimate_violations,
        "gradient_violations": gradient_violations,
        "rate_violations": rate_violations,
        "broken_chains": broken_chains,
    }


def test_e10_invariants(benchmark):
    row = benchmark.pedantic(run_and_check, rounds=1, iterations=1)
    table = report.Table(
        f"E10: safety invariants over a randomized churn run ({row['samples']} samples)",
        ["invariant", "violations"],
    )
    table.add_row("FC/SC conditions in conflict (Lemma 5.3)", row["condition_conflicts"])
    table.add_row("max estimate above true maximum (Cond. 4.3)", row["max_estimate_violations"])
    table.add_row("gradient bound on backbone (Cor. 5.26)", row["gradient_violations"])
    table.add_row("logical rate outside [alpha, beta]", row["rate_violations"])
    table.add_row("broken neighbor-level chains (Lemma 5.1)", row["broken_chains"])
    emit(table, "e10_invariants.txt")

    assert row["condition_conflicts"] == 0
    assert row["max_estimate_violations"] == 0
    assert row["gradient_violations"] == 0
    assert row["rate_violations"] == 0
    assert row["broken_chains"] == 0
