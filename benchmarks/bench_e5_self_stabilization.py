"""E5 -- Self-stabilization of the global skew (Theorem 5.6(II)).

Starting from clocks corrupted by a skew of roughly twice the algorithm's
bound, the global skew must decrease at a rate of at least
``mu (1 - rho) - 2 rho`` until it is back in the legitimate region, and it
must eventually converge below the configured bound and stay there.
"""

import pytest

from repro.analysis import report, stabilization
from repro.core.algorithm import aopt_factory
from repro.network import topology
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

from common import BENCH_EDGE, BENCH_PARAMS, FAST_INSERTION, emit, global_skew_bound_for_line

N_NODES = 16


def run_corrupted():
    graph = topology.line(N_NODES, BENCH_EDGE)
    bound = global_skew_bound_for_line(N_NODES)
    corrupted_skew = 2.0 * bound
    initial = {
        i: corrupted_skew * i / (N_NODES - 1) for i in range(N_NODES)
    }
    fast, slow = half_split(graph.nodes)
    duration = 60.0 + corrupted_skew / (0.5 * BENCH_PARAMS.self_stabilization_rate)
    config = SimulationConfig(
        params=BENCH_PARAMS,
        dt=0.1,
        duration=duration,
        sample_interval=1.0,
        drift=TwoGroupAdversary(BENCH_PARAMS.rho, fast, slow),
        estimate_strategy="toward_observer",
        initial_logical=initial,
    )
    aopt_config = default_aopt_config(
        graph, config, global_skew_bound=corrupted_skew * 1.1, insertion_duration=FAST_INSERTION
    )
    result = run_simulation(graph, aopt_factory(aopt_config), config)
    decay_window = 0.5 * corrupted_skew / BENCH_PARAMS.self_stabilization_rate
    measured_rate = stabilization.decrease_rate(result.trace, start=0.0, end=decay_window)
    convergence = stabilization.global_skew_convergence_time(result.trace, bound=bound)
    return {
        "corrupted_skew": corrupted_skew,
        "bound": bound,
        "guaranteed_rate": BENCH_PARAMS.self_stabilization_rate,
        "measured_rate": measured_rate,
        "convergence_time": convergence if convergence is not None else float("nan"),
        "final_skew": result.trace.final().global_skew(),
    }


def test_e5_self_stabilization(benchmark):
    row = benchmark.pedantic(run_corrupted, rounds=1, iterations=1)
    table = report.Table(
        f"E5: recovery from a corrupted state (line of {N_NODES} nodes)",
        ["metric", "value"],
    )
    table.add_row("initial (corrupted) global skew", row["corrupted_skew"])
    table.add_row("legitimate bound G~", row["bound"])
    table.add_row("guaranteed decrease rate mu(1-rho)-2rho", row["guaranteed_rate"])
    table.add_row("measured decrease rate", row["measured_rate"])
    table.add_row("time to re-enter the legitimate region", row["convergence_time"])
    table.add_row("final global skew", row["final_skew"])
    emit(table, "e5_self_stabilization.txt")

    assert row["measured_rate"] is not None
    # The measured drain rate is at least (a conservative fraction of) the
    # guaranteed one; drift works against the drain, hence the 0.8 factor.
    assert row["measured_rate"] >= 0.8 * row["guaranteed_rate"]
    # The system re-enters the legitimate region and stays there.
    assert row["convergence_time"] == row["convergence_time"]
    assert row["final_skew"] <= row["bound"]
