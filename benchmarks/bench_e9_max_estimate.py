"""E9 -- Quality of the flooded max estimates (Condition 4.3).

Every node's estimate ``M_u`` of the maximum logical clock must satisfy
``L_u <= M_u <= max_v L_v`` and ``M_u >= max_v L_v - D(t)`` where ``D(t)`` is
the dynamic estimate diameter.  The experiment runs AOPT with message-based
estimates and the diameter tracker enabled and reports the worst estimate lag
against the tracked diameter.
"""

import pytest

from repro.analysis import report, skew
from repro.core.algorithm import aopt_factory
from repro.network import topology
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

from common import BENCH_EDGE, BENCH_PARAMS, FAST_INSERTION, emit

N_NODES = 12


def run_tracked():
    graph = topology.line(N_NODES, BENCH_EDGE)
    fast, slow = half_split(graph.nodes)
    config = SimulationConfig(
        params=BENCH_PARAMS,
        dt=0.1,
        duration=200.0,
        sample_interval=1.0,
        drift=TwoGroupAdversary(BENCH_PARAMS.rho, fast, slow),
        estimate_mode="broadcast",
        broadcast_interval=1.0,
        track_diameter=True,
    )
    aopt_config = default_aopt_config(graph, config, insertion_duration=FAST_INSERTION)
    result = run_simulation(graph, aopt_factory(aopt_config), config)
    steady_start = skew.steady_state_window(result.trace, 0.5)[0]
    worst_lag = 0.0
    worst_diameter = 0.0
    violations = 0
    for sample in result.trace:
        violations += skew.max_estimate_violations(sample)
        if sample.time < steady_start or sample.diameter is None:
            continue
        worst_lag = max(worst_lag, skew.max_estimate_lag(sample))
        worst_diameter = max(worst_diameter, sample.diameter)
    return {
        "worst_lag": worst_lag,
        "worst_diameter": worst_diameter,
        "upper_violations": violations,
        "final_diameter": result.trace.final().diameter,
    }


def test_e9_max_estimate_quality(benchmark):
    row = benchmark.pedantic(run_tracked, rounds=1, iterations=1)
    table = report.Table(
        f"E9: max-estimate accuracy on a line of {N_NODES} nodes (broadcast estimates)",
        ["metric", "value"],
    )
    table.add_row("worst lag  max_v L_v - M_u (steady state)", row["worst_lag"])
    table.add_row("dynamic estimate diameter D(t) (worst, steady state)", row["worst_diameter"])
    table.add_row("samples where M_u exceeded the true maximum", row["upper_violations"])
    table.add_row("final tracked diameter", row["final_diameter"])
    emit(table, "e9_max_estimate.txt")

    # M_u never exceeds the true maximum (inequality (2)) ...
    assert row["upper_violations"] == 0
    # ... and lags it by at most the dynamic estimate diameter (inequality (3)).
    assert row["worst_lag"] <= row["worst_diameter"] + 1e-6
    assert row["worst_diameter"] > 0
