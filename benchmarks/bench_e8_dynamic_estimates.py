"""E8 -- Static versus dynamic global-skew estimates (Section 7).

The insertion duration of equation (10) is proportional to the *a priori*
bound ``G~``; Section 7 replaces it with node-local, time-dependent estimates
at the cost of the much larger constant of equation (11).  The experiment
tabulates both durations across a range of estimates and then runs a small
simulation in which the algorithm is driven by a dynamic
(:class:`DynamicGlobalSkewEstimate`) provider, checking that edge insertion
still completes and the skew bounds still hold.
"""

import pytest

from repro.analysis import report
from repro.core.algorithm import AOPTConfig, aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.neighbor_sets import FULLY_INSERTED
from repro.core.skew_estimates import DynamicGlobalSkewEstimate
from repro.network import dynamics
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, minimum_kappa, run_simulation

from common import BENCH_EDGE, BENCH_PARAMS, INSERTION_SCALE, emit

ESTIMATES = (10.0, 50.0, 200.0)


def duration_table_rows():
    rows = []
    for estimate in ESTIMATES:
        static = BENCH_PARAMS.insertion_duration(estimate)
        dynamic = BENCH_PARAMS.insertion_duration_dynamic(
            estimate, BENCH_EDGE.delay, BENCH_EDGE.tau
        )
        rows.append((estimate, static, dynamic, dynamic / static))
    return rows


def run_dynamic_estimate_insertion():
    n = 6
    scenario = dynamics.line_with_end_to_end_insertion(
        n, insertion_time=20.0, params=BENCH_EDGE
    )
    fast, slow = half_split(scenario.graph.nodes)
    config = SimulationConfig(
        params=BENCH_PARAMS,
        dt=0.1,
        duration=500.0,
        drift=TwoGroupAdversary(BENCH_PARAMS.rho, fast, slow),
        estimate_strategy="toward_observer",
    )
    # The node-local estimate starts generous and tightens over time, always
    # remaining an upper bound on the true global skew of this small run.
    dynamic_estimate = DynamicGlobalSkewEstimate(
        lambda t: max(10.0, 30.0 - 0.02 * t), floor=5.0
    )
    aopt_config = AOPTConfig(
        params=BENCH_PARAMS,
        global_skew=dynamic_estimate,
        max_level=BENCH_PARAMS.levels_for(30.0, minimum_kappa(scenario.graph, BENCH_PARAMS)),
        insertion_duration=insertion_mod.scaled_insertion_duration(INSERTION_SCALE),
    )
    result = run_simulation(scenario.graph, aopt_factory(aopt_config), config)
    u, v = scenario.new_edge
    return {
        "inserted_u": result.engine.algorithm(u).neighbor_level(v),
        "inserted_v": result.engine.algorithm(v).neighbor_level(u),
        "max_global_skew": result.trace.max_global_skew(),
        "final_new_edge_skew": result.trace.final().skew(u, v),
    }


def test_e8_dynamic_estimates(benchmark):
    rows, dynamic_run = benchmark.pedantic(
        lambda: (duration_table_rows(), run_dynamic_estimate_insertion()),
        rounds=1,
        iterations=1,
    )
    table = report.Table(
        "E8: insertion durations, equation (10) versus equation (11)",
        ["global skew estimate", "I static (eq. 10)", "I dynamic (eq. 11)", "ratio"],
    )
    for row in rows:
        table.add_row(*row)
    emit(table, "e8_dynamic_estimates.txt")

    run_table = report.Table(
        "E8: insertion driven by a node-local dynamic estimate (line of 6)",
        ["metric", "value"],
    )
    run_table.add_row("new edge level at endpoint u", dynamic_run["inserted_u"])
    run_table.add_row("new edge level at endpoint v", dynamic_run["inserted_v"])
    run_table.add_row("max global skew", dynamic_run["max_global_skew"])
    run_table.add_row("final skew on new edge", dynamic_run["final_new_edge_skew"])
    emit(run_table, "e8_dynamic_estimate_run.txt")

    # Equation (11) durations are powers of two and dominate equation (10):
    # the price of tolerating node-local, time-varying estimates.
    import math

    for estimate, static, dynamic, ratio in rows:
        assert dynamic >= static
        assert math.log2(dynamic) == pytest.approx(round(math.log2(dynamic)))
        assert static == pytest.approx(BENCH_PARAMS.insertion_duration(estimate))
    # Both durations scale (at least) linearly with the estimate.
    assert rows[-1][1] >= (ESTIMATES[-1] / ESTIMATES[0]) * rows[0][1] * 0.99
    assert rows[-1][2] >= rows[0][2]
    # The dynamic-estimate code path completes the insertion on both sides.
    assert dynamic_run["inserted_u"] == FULLY_INSERTED
    assert dynamic_run["inserted_v"] == FULLY_INSERTED
    assert dynamic_run["final_new_edge_skew"] < 2.0 * BENCH_PARAMS.kappa_for(
        BENCH_EDGE.epsilon, BENCH_EDGE.tau
    )
