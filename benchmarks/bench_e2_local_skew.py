"""E2 -- Local skew: AOPT stays near the (logarithmic) gradient bound while
baselines degrade with the diameter (Theorems 5.22/5.25 versus Section 2).

The E1 sweep is evaluated for the worst skew observed across any single edge
of the line, over the whole run (which includes the redistribution of the
adversarially pre-built ramp):

* AOPT's local skew must stay below the single-edge gradient bound
  ``(s(kappa)+1) * kappa`` and is essentially flat in the diameter;
* the max-propagation baseline jumps to fresh maximum information and
  therefore concentrates skew proportional to the diameter on single edges;
* the single-level threshold rule (configured with the Theta(sqrt(D))
  threshold it needs for its own global-skew argument) degrades like sqrt(D).
"""

import pytest

from repro.analysis import report, skew
from repro.lower_bounds import analytic

from common import (
    BENCH_PARAMS,
    LINE_SIZES,
    emit,
    kappa_default,
    line_scaling_run,
    local_skew_bound,
)

ALGORITHMS = ("AOPT", "MaxPropagation", "ThresholdGradient")


def collect_rows():
    rows = []
    for n in LINE_SIZES:
        edges = [(i, i + 1) for i in range(n - 1)]
        row = {"n": n}
        for algorithm in ALGORITHMS:
            result, bound = line_scaling_run(n, algorithm)
            row[algorithm] = skew.max_local_skew(result.trace, edges)
            row["bound"] = local_skew_bound(bound)
        row["lower"] = kappa_default() * analytic.local_skew_lower_bound(
            float(n), BENCH_PARAMS
        )
        rows.append(row)
    return rows


def test_e2_local_skew_vs_diameter(benchmark):
    rows = benchmark.pedantic(collect_rows, rounds=1, iterations=1)
    table = report.Table(
        "E2: worst single-edge skew versus line length",
        [
            "n",
            "Omega(log D) ref",
            "AOPT",
            "AOPT gradient bound",
            "MaxPropagation",
            "ThresholdGradient (sqrt-D threshold)",
        ],
    )
    for row in rows:
        table.add_row(
            row["n"],
            row["lower"],
            row["AOPT"],
            row["bound"],
            row["MaxPropagation"],
            row["ThresholdGradient"],
        )
    emit(table, "e2_local_skew.txt")

    # AOPT respects the gradient bound on every line length.
    assert all(row["AOPT"] <= row["bound"] + 1e-6 for row in rows)
    # On the largest instance both baselines are worse than AOPT.
    largest = rows[-1]
    assert largest["MaxPropagation"] > largest["AOPT"]
    assert largest["ThresholdGradient"] > largest["AOPT"]
    # AOPT's local skew is essentially flat: growing the diameter 6x increases
    # it by less than 2x, while MaxPropagation at least doubles.
    aopt_growth = rows[-1]["AOPT"] / max(rows[0]["AOPT"], 1e-9)
    maxprop_growth = rows[-1]["MaxPropagation"] / max(rows[0]["MaxPropagation"], 1e-9)
    assert aopt_growth < 2.0
    assert maxprop_growth > 2.0
