"""E7 -- Lower bounds: Omega(D) global skew and Omega(D) stabilization time
(Section 8, Theorem 8.1, and the shifting argument).

Two measurements:

1. *Shifting scenario*: the drift-ramp / directional-delay adversary on a
   line.  The shifting argument shows that no algorithm can *guarantee* a
   global skew below ``sum(eps)/2`` -- the adversary could always have chosen
   rates/delays that make the real skew that large while every observation
   stays the same.  A forward simulator cannot re-choose the past, so the
   *measured* skew of a particular run may be far smaller than the bound;
   what the experiment checks is that the analytic lower bound stays below
   the ``O(D)`` guarantee AOPT is configured with (i.e. the guarantee is
   consistent with optimality) and that the measured skew respects the
   guarantee.

2. *Insertion persistence*: in the Theorem 8.1 construction (a line whose
   endpoints become adjacent while the inner section carries skew
   proportional to the diameter), the skew across the new edge must persist
   for at least ``c1 * D / (1 + rho)`` time after the insertion -- and the
   persistence must grow with the diameter.
"""

import pytest

from repro.analysis import report, skew
from repro.core.algorithm import aopt_factory
from repro.lower_bounds import insertion_bound, shifting
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

from common import (
    BENCH_EDGE,
    BENCH_PARAMS,
    FAST_INSERTION,
    emit,
    kappa_default,
    ramp_initial_profile,
)

SHIFTING_N = 12
PERSISTENCE_SIZES = (8, 16)


def run_shifting():
    scenario = shifting.build(SHIFTING_N, BENCH_PARAMS, edge_params=BENCH_EDGE)
    duration = 2.0 * shifting.minimum_time_to_accumulate(
        scenario.expected_lower_bound, BENCH_PARAMS
    )
    config = SimulationConfig(
        params=BENCH_PARAMS,
        dt=0.1,
        duration=duration,
        sample_interval=1.0,
        drift=scenario.drift,
        delay=scenario.delay,
        estimate_mode="broadcast",
        broadcast_interval=1.0,
    )
    aopt_config = default_aopt_config(
        scenario.graph, config, insertion_duration=FAST_INSERTION
    )
    result = run_simulation(scenario.graph, aopt_factory(aopt_config), config)
    return {
        "lower_bound": scenario.expected_lower_bound,
        "measured": result.trace.max_global_skew(),
        "upper_bound": aopt_config.global_skew.value(0.0),
    }


def run_persistence(n: int):
    scenario = insertion_bound.build(
        n, BENCH_PARAMS, edge_params=BENCH_EDGE, skew_buildup_time=30.0
    )
    graph = scenario.scenario.graph
    duration = scenario.insertion_time + 60.0 * n
    config = SimulationConfig(
        params=BENCH_PARAMS,
        dt=0.1,
        duration=duration,
        sample_interval=1.0,
        drift=scenario.drift,
        estimate_strategy="toward_observer",
        initial_logical=ramp_initial_profile(n + 1, 0.95 * kappa_default()),
    )
    bound = 1.1 * 0.95 * kappa_default() * n
    aopt_config = default_aopt_config(
        graph, config, global_skew_bound=bound, insertion_duration=FAST_INSERTION
    )
    result = run_simulation(graph, aopt_factory(aopt_config), config)
    u, v = scenario.new_edge
    initial_skew = result.trace.sample_at(scenario.insertion_time).skew(u, v)
    threshold = initial_skew / 2.0
    persisted_until = scenario.insertion_time
    for sample in result.trace:
        if sample.time < scenario.insertion_time:
            continue
        if sample.skew(u, v) >= threshold:
            persisted_until = sample.time
        else:
            break
    return {
        "n": n,
        "skew_at_insertion": initial_skew,
        "skew_lower_bound": scenario.skew_lower_bound,
        "persistence_measured": persisted_until - scenario.insertion_time,
        "persistence_lower_bound": scenario.persistence_lower_bound,
    }


def collect():
    return run_shifting(), [run_persistence(n) for n in PERSISTENCE_SIZES]


def test_e7_lower_bounds(benchmark):
    shifting_row, persistence_rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = report.Table(
        f"E7a: shifting-argument scenario on a line of {SHIFTING_N} nodes",
        ["Omega(D) lower bound", "measured global skew (AOPT)", "O(D) upper bound"],
    )
    table.add_row(
        shifting_row["lower_bound"], shifting_row["measured"], shifting_row["upper_bound"]
    )
    emit(table, "e7a_shifting.txt")

    table = report.Table(
        "E7b: persistence of skew on a freshly inserted end-to-end edge (AOPT)",
        [
            "n",
            "skew at insertion",
            "Theorem 8.1 skew scale",
            "measured persistence",
            "Omega(D) persistence bound",
        ],
    )
    for row in persistence_rows:
        table.add_row(
            row["n"],
            row["skew_at_insertion"],
            row["skew_lower_bound"],
            row["persistence_measured"],
            row["persistence_lower_bound"],
        )
    emit(table, "e7b_insertion_persistence.txt")

    # The unavoidable skew (lower bound) stays below AOPT's O(D) guarantee,
    # i.e. the guarantee is compatible with the impossibility result, and the
    # measured run respects the guarantee.
    assert shifting_row["lower_bound"] <= shifting_row["upper_bound"]
    assert shifting_row["measured"] <= shifting_row["upper_bound"]
    # Skew on the new edge persists at least as long as the universal bound,
    # and longer for larger diameters.
    for row in persistence_rows:
        assert row["persistence_measured"] >= row["persistence_lower_bound"]
    assert (
        persistence_rows[-1]["persistence_measured"]
        > persistence_rows[0]["persistence_measured"]
    )
