"""E3 -- Gradient skew as a function of distance (Corollary 5.26).

On the longest line of the E1/E2 sweep, the maximum skew observed between any
two nodes is grouped by their weighted distance ``kappa_p`` and compared to
the gradient bound ``(s(p) + 1) * kappa_p`` with
``s(p) = 2 + ceil(log_sigma(4 G / kappa_p))`` -- the ``O(d log(D/d))`` curve of
the paper.  The measured profile must stay below the bound at every distance,
grow with the distance, and follow the concave ``d log(D/d)`` template
(saturating towards the global skew instead of growing linearly forever).
"""

import pytest

from repro.analysis import gradient, report

from common import BENCH_PARAMS, LINE_SIZES, emit, line_scaling_run

PROFILE_N = LINE_SIZES[-1]


def collect_profile():
    result, bound = line_scaling_run(PROFILE_N, "AOPT")
    graph = result.graph
    points = gradient.profile(result.trace, graph, bound, BENCH_PARAMS)
    score = gradient.logarithmic_shape_score(points)
    return points, score, bound


def test_e3_gradient_vs_distance(benchmark):
    points, score, bound = benchmark.pedantic(collect_profile, rounds=1, iterations=1)
    table = report.Table(
        f"E3: max skew per weighted distance (AOPT, line of {PROFILE_N}, G~={bound:.1f})",
        ["distance kappa_p", "max skew", "gradient bound", "utilisation"],
    )
    for point in points:
        table.add_row(point.distance, point.max_skew, point.bound, point.ratio)
    emit(table, "e3_gradient_vs_distance.txt")
    print(f"shape correlation with d*log(D/d) template: {score:.3f}")

    # The gradient bound holds at every distance.
    assert all(p.max_skew <= p.bound + 1e-6 for p in points)
    # Larger distances carry (weakly) more skew ...
    skews = [p.max_skew for p in points]
    assert all(a <= b + 1e-6 for a, b in zip(skews, skews[1:]))
    # ... but sub-linearly: the per-unit-distance skew shrinks with distance,
    # which is the signature of the d*log(D/d) shape.
    assert points[-1].max_skew / points[-1].distance < points[0].max_skew / points[0].distance
    assert score is not None and score > 0.5
