"""E11 -- Backend speed: the struct-of-arrays engine vs the reference engine.

The fast backend (:mod:`repro.fastsim`) must be bit-identical to the
reference engine on the scenarios it supports *and* markedly faster -- the
acceptance bar is a >= 5x speedup on the n = 1024 line scenario.  This
benchmark times both backends on the ``backend_bench`` scenario family
(two-group adversary, adversarial initial ramp, ``toward_observer``
estimates) and writes a snapshot to
``benchmarks/results/e11_backend_speed.json``.

The default pytest invocation keeps the grid small so CI stays fast; run

    PYTHONPATH=src python -m repro.experiments bench

for the full n in {64, 256, 1024} x {line, grid, random} sweep, which
(re)writes the repo's perf trajectory file ``BENCH_fastsim.json``.
"""

from pathlib import Path

import pytest

from repro.analysis import report
from repro.experiments.bench import run_backend_bench, write_bench_json

from common import emit

#: Small grid for the pytest/CI run; the CLI covers the full trajectory.
SIZES = (64,)
TOPOLOGIES = ("line",)
DURATION = 10.0

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "e11_backend_speed.json"


def run_bench():
    return run_backend_bench(
        sizes=SIZES,
        topologies=TOPOLOGIES,
        duration=DURATION,
        repeats=1,
    )


def test_e11_backend_speed(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    table = report.Table(
        "E11: engine backend speed (reference vs fast)",
        ["topology", "n", "steps", "reference [s]", "fast [s]", "speedup", "identical"],
    )
    for entry in payload["results"]:
        table.add_row(
            entry["topology"],
            entry["n"],
            entry["steps"],
            entry["reference_seconds"],
            entry["fast_seconds"],
            entry["speedup"],
            "yes" if entry["traces_identical"] else "NO",
        )
    emit(table, "e11_backend_speed.txt")
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    write_bench_json(payload, RESULTS_JSON)

    for entry in payload["results"]:
        # Equivalence is non-negotiable; speed must clear a conservative bar
        # even on slow CI machines (the full bench shows ~10x).
        assert entry["traces_identical"] is True
        assert entry["speedup"] >= 2.0
