"""E11 -- Backend speed: struct-of-arrays and vectorized engines vs reference.

The fast backend (:mod:`repro.fastsim`) and the NumPy-vectorized vec backend
(:mod:`repro.vecsim`) must be bit-identical to the reference engine on the
scenarios they support *and* markedly faster -- the acceptance bars are a
>= 5x speedup of fast over reference on the n = 1024 line, and >= 5x of vec
over fast at n = 1024 rising to >= 20x at n = 4096 (see ``BENCH_vecsim.json``).
This benchmark times the backends on the ``backend_bench`` scenario family
(two-group adversary, adversarial initial ramp, ``toward_observer``
estimates) and writes a snapshot to
``benchmarks/results/e11_backend_speed.json``.

The default pytest invocation keeps the grid small so CI stays fast; run

    PYTHONPATH=src python -m repro.experiments bench

for the reference-vs-fast n in {64, 256, 1024} x {line, grid, random} sweep
(the repo's ``BENCH_fastsim.json`` trajectory), and

    PYTHONPATH=src python -m repro.experiments bench \
        --backends fast,vec --sizes 64,256,1024,4096 \
        --output BENCH_vecsim.json

for the fast-vs-vec trajectory up to n = 4096 (``BENCH_vecsim.json``).
"""

import importlib.util
from pathlib import Path

from repro.analysis import report
from repro.experiments.bench import run_backend_bench, write_bench_json

from common import emit

#: Small grid for the pytest/CI run; the CLI covers the full trajectory.
SIZES = (64,)
TOPOLOGIES = ("line",)
DURATION = 10.0

HAVE_NUMPY = importlib.util.find_spec("numpy") is not None
BACKENDS = ("reference", "fast", "vec") if HAVE_NUMPY else ("reference", "fast")

RESULTS_JSON = Path(__file__).resolve().parent / "results" / "e11_backend_speed.json"


def run_bench():
    return run_backend_bench(
        sizes=SIZES,
        topologies=TOPOLOGIES,
        duration=DURATION,
        repeats=1,
        backends=BACKENDS,
    )


def test_e11_backend_speed(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    columns = ["topology", "n", "steps"]
    columns += [f"{name} [s]" for name in BACKENDS]
    columns += ["speedup", "identical"]
    table = report.Table(
        "E11: engine backend speed (reference vs fast vs vec)", columns
    )
    for entry in payload["results"]:
        row = [entry["topology"], entry["n"], entry["steps"]]
        row += [entry[f"{name}_seconds"] for name in BACKENDS]
        row += [entry["speedup"], "yes" if entry["traces_identical"] else "NO"]
        table.add_row(*row)
    emit(table, "e11_backend_speed.txt")
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    write_bench_json(payload, RESULTS_JSON)

    for entry in payload["results"]:
        # Equivalence is non-negotiable; speed must clear a conservative bar
        # even on slow CI machines (the full bench shows ~10x fast and far
        # more for vec at large n; at n = 64 the numpy dispatch overhead
        # keeps vec modest, so it only has to beat the reference engine).
        assert entry["traces_identical"] is True
        assert entry["speedup"] >= 2.0
        if HAVE_NUMPY:
            assert entry["vec_speedup_over_reference"] >= 1.0
