"""E13: ``--until-stable`` early-exit benchmark (writes BENCH_telemetry.json).

Quantifies what the watchdog-driven early exit buys: a ``line_scaling`` run
converges roughly a third of the way into its configured duration, so
stopping at the convergence watchdog's firing should cut both the sample
count and the wall-clock time by a large factor -- while the truncated
observer report stays a bit-identical prefix of the full run's (the
equivalence is asserted, not assumed).  Two modes:

* default -- regenerate ``BENCH_telemetry.json``: full-vs-until-stable
  timings per backend with sample counts and speedups;
* ``--check`` -- the CI gate: assert the truncated run actually stopped
  early, kept >= the minimum sample reduction, ran faster in wall-clock,
  and produced the exact prefix report, exiting nonzero on violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import execute_spec, registry, scenario
from repro.experiments.results import build_run_pipeline, trace_from_payload
from repro.fastsim.backend import backend_available

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

N = 6
BACKENDS = ["reference", "fast"] + (["vec"] if backend_available("vec") else [])

#: The truncated run must keep at most this fraction of the full samples
#: (line_scaling n=6 converges around a third of the way in, so 50% is a
#: comfortable margin, not a tight fit).
MAX_SAMPLE_FRACTION = 0.5
#: ... and at most this fraction of the full wall-clock time.  Generous on
#: purpose: CI boxes are noisy, and the sample-fraction bar above is the
#: sharp one (wall-clock tracks samples closely on every backend).
MAX_WALL_FRACTION = 0.95


def specs(backend: str):
    full = scenario("line_scaling", n=N, backend=backend)
    return full, full.with_until_stable()


def timed_execute(spec):
    start = time.perf_counter()
    payload = execute_spec(spec)
    return payload, time.perf_counter() - start


def prefix_report_matches(backend: str, full_payload, truncated_payload) -> bool:
    """Replay the full trace up to the stop time: must equal the truncated
    report bit-for-bit (as canonical JSON)."""
    stop_time = truncated_payload["observers"]["observers"][
        "watchdog_convergence"
    ]["first_fired"]
    if stop_time is None:
        return False
    spec = specs(backend)[1]
    built = registry.build_scenario(spec)
    pipeline = build_run_pipeline(
        spec,
        graph=built.graph,
        base_edges=built.base_edges,
        config=built.config,
        meta=built.meta,
        global_skew_bound=built.global_skew_bound,
    )
    for sample in trace_from_payload(full_payload["trace"]):
        if sample.time <= stop_time + 1e-12:
            pipeline.observe_sample(sample)
    restricted = pipeline.finalize().to_payload()
    return json.dumps(restricted, sort_keys=True) == json.dumps(
        truncated_payload["observers"], sort_keys=True
    )


def measure(backend: str) -> dict:
    full_spec, stable_spec = specs(backend)
    full, full_seconds = timed_execute(full_spec)
    truncated, stable_seconds = timed_execute(stable_spec)
    return {
        "backend": backend,
        "n": N,
        "full_seconds": round(full_seconds, 4),
        "until_stable_seconds": round(stable_seconds, 4),
        "speedup": round(full_seconds / max(stable_seconds, 1e-9), 2),
        "full_samples": full["observers"]["sample_count"],
        "until_stable_samples": truncated["observers"]["sample_count"],
        "stopped_early": truncated["stopped_early"],
        "stop_time": truncated["observers"]["observers"][
            "watchdog_convergence"
        ]["first_fired"],
        "prefix_bit_identical": prefix_report_matches(backend, full, truncated),
    }


def cmd_generate() -> int:
    results = [measure(backend) for backend in BACKENDS]
    payload = {
        "benchmark": "until_stable_early_exit",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": {
            "scenario": "line_scaling",
            "n": N,
            "max_sample_fraction": MAX_SAMPLE_FRACTION,
            "max_wall_fraction": MAX_WALL_FRACTION,
        },
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    for entry in results:
        print(
            f"{entry['backend']}: {entry['full_seconds']}s -> "
            f"{entry['until_stable_seconds']}s ({entry['speedup']}x), "
            f"{entry['full_samples']} -> {entry['until_stable_samples']} samples, "
            f"prefix identical: {entry['prefix_bit_identical']}"
        )
    return 0


def cmd_check() -> int:
    """CI gate: the early exit must be real, faster, and bit-identical."""
    failures = []
    for backend in BACKENDS:
        entry = measure(backend)
        print(
            f"{backend}: full {entry['full_seconds']}s / "
            f"{entry['full_samples']} samples, until-stable "
            f"{entry['until_stable_seconds']}s / "
            f"{entry['until_stable_samples']} samples "
            f"(stop at t={entry['stop_time']})"
        )
        if not entry["stopped_early"]:
            failures.append(f"{backend}: run did not stop early")
        fraction = entry["until_stable_samples"] / max(entry["full_samples"], 1)
        if fraction > MAX_SAMPLE_FRACTION:
            failures.append(
                f"{backend}: kept {fraction:.0%} of full samples "
                f"(limit {MAX_SAMPLE_FRACTION:.0%})"
            )
        wall = entry["until_stable_seconds"] / max(entry["full_seconds"], 1e-9)
        if wall > MAX_WALL_FRACTION:
            failures.append(
                f"{backend}: wall-clock fraction {wall:.0%} "
                f"(limit {MAX_WALL_FRACTION:.0%})"
            )
        if not entry["prefix_bit_identical"]:
            failures.append(
                f"{backend}: truncated report is not a bit-identical prefix "
                "of the full report"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("until-stable gate OK: early exit, faster, bit-identical prefix")
    return 1 if failures else 0


def test_e13_until_stable():
    """Pytest smoke (scaled down): early exit + prefix equality on fast."""
    entry = measure("fast")
    assert entry["stopped_early"]
    assert entry["until_stable_samples"] < entry["full_samples"]
    assert entry["prefix_bit_identical"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the early-exit contract instead of regenerating the JSON",
    )
    args = parser.parse_args()
    return cmd_check() if args.check else cmd_generate()


if __name__ == "__main__":
    sys.exit(main())
